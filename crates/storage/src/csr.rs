//! Two-level CSR adjacency index (Section 4.1.1) with factored ID
//! components (Section 5.2) and empty-list compression (Section 5.3).
//!
//! A CSR stores, per (edge label, direction), the `(edge ID, neighbour ID)`
//! pairs of every vertex's adjacency list, clustered by vertex. After ID
//! factoring only two per-edge components remain, each in its own
//! leading-0-suppressed array:
//!
//! * `nbr` — the neighbour's label-level positional offset (its label is
//!   determined by the edge label and therefore omitted);
//! * `edge_ids` — the page-level positional offsets of the edge IDs, and
//!   only when the Figure 6 decision tree says they are needed (the label
//!   has properties and is not single-cardinality).
//!
//! Vertices with empty adjacency lists can be NULL-compressed: the offsets
//! array then stores entries only for non-empty vertices and a
//! [`NullMap`] (Jacobson by default) maps vertex offsets to them in
//! constant time.

use gfcl_columnar::{NullKind, NullMap, SegmentSink, SegmentSource, UIntArray};
use gfcl_common::{MemoryUsage, Reader, Result, Writer};

/// Build options for a [`Csr`].
#[derive(Debug, Clone, Copy)]
pub struct CsrOptions {
    /// Leading-0 suppression of the offsets and neighbour arrays.
    pub zero_suppress: bool,
    /// Compress empty adjacency lists with this layout (`None` keeps one
    /// offsets entry per vertex).
    pub compress_empty: Option<NullKind>,
}

impl Default for CsrOptions {
    fn default() -> Self {
        CsrOptions { zero_suppress: true, compress_empty: None }
    }
}

/// A single-direction CSR for one edge label.
#[derive(Debug, Clone)]
pub struct Csr {
    n_vertices: usize,
    /// `offsets[s]..offsets[s+1]` bounds the list of the s-th *stored*
    /// vertex. One entry per vertex (+1) when uncompressed; one per
    /// non-empty vertex (+1) when empty-list compressed.
    offsets: UIntArray,
    /// Maps a vertex offset to its slot in `offsets`; `AllValid` when
    /// empty lists are not compressed.
    empties: NullMap,
    /// Neighbour label-level positional offsets, in list order.
    nbr: UIntArray,
    /// Per-edge ID component (page-level positional offsets under the new
    /// ID scheme; global edge IDs otherwise); `None` when the decision tree
    /// omits them.
    edge_ids: Option<UIntArray>,
}

impl Csr {
    /// Build a CSR from parallel `(from, nbr)` edge arrays. Returns the CSR
    /// and the permutation `input_of_pos` mapping each CSR position to the
    /// index of the input edge stored there (used to align edge properties
    /// and edge-ID arrays with CSR order).
    pub fn build(
        n_vertices: usize,
        from: &[u64],
        nbr: &[u64],
        opts: CsrOptions,
    ) -> (Csr, Vec<u64>) {
        assert_eq!(from.len(), nbr.len());
        let m = from.len();

        // Counting sort by `from`.
        let mut degree = vec![0u64; n_vertices];
        for &f in from {
            degree[f as usize] += 1;
        }
        let mut starts = vec![0u64; n_vertices + 1];
        for v in 0..n_vertices {
            starts[v + 1] = starts[v] + degree[v];
        }
        let mut cursor = starts.clone();
        let mut nbr_sorted = vec![0u64; m];
        let mut input_of_pos = vec![0u64; m];
        for i in 0..m {
            let f = from[i] as usize;
            let p = cursor[f] as usize;
            cursor[f] += 1;
            nbr_sorted[p] = nbr[i];
            input_of_pos[p] = i as u64;
        }

        let (offsets, empties) = match opts.compress_empty {
            None => {
                let offsets = UIntArray::from_values(&starts, opts.zero_suppress);
                (offsets, NullMap::build(&vec![true; n_vertices], NullKind::None))
            }
            Some(kind) => {
                let valid: Vec<bool> = degree.iter().map(|&d| d > 0).collect();
                let map = NullMap::build(&valid, kind);
                if map.is_dense() {
                    // Dense layouts (Uncompressed) map positions through the
                    // identity, so the offsets array must stay full-length.
                    (UIntArray::from_values(&starts, opts.zero_suppress), map)
                } else {
                    let mut compact = Vec::with_capacity(valid.iter().filter(|&&v| v).count() + 1);
                    for (v, &nonempty) in valid.iter().enumerate() {
                        if nonempty {
                            compact.push(starts[v]);
                        }
                    }
                    compact.push(m as u64);
                    (UIntArray::from_values(&compact, opts.zero_suppress), map)
                }
            }
        };

        let csr = Csr {
            n_vertices,
            offsets,
            empties,
            nbr: UIntArray::from_values(&nbr_sorted, opts.zero_suppress),
            edge_ids: None,
        };
        (csr, input_of_pos)
    }

    /// Attach the per-edge ID-component array (aligned with CSR positions).
    pub fn set_edge_ids(&mut self, ids: UIntArray) {
        assert_eq!(ids.len(), self.nbr.len());
        self.edge_ids = Some(ids);
    }

    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    pub fn n_edges(&self) -> usize {
        self.nbr.len()
    }

    /// Adjacency list bounds of vertex `v`: `(start position, length)`.
    /// Constant time in every configuration (Desideratum 2): the empty-list
    /// NullMap is Jacobson-indexed.
    #[inline]
    pub fn list(&self, v: u64) -> (u64, usize) {
        match self.empties.physical(v as usize) {
            Some(s) => {
                let start = self.offsets.get(s);
                let end = self.offsets.get(s + 1);
                (start, (end - start) as usize)
            }
            None => (0, 0),
        }
    }

    #[inline]
    pub fn degree(&self, v: u64) -> usize {
        self.list(v).1
    }

    /// Neighbour offset of the edge at CSR position `pos`.
    #[inline]
    pub fn nbr_at(&self, pos: u64) -> u64 {
        self.nbr.get(pos as usize)
    }

    /// Edge ID component at CSR position `pos`, or `None` when the
    /// decision tree omitted the array.
    #[inline]
    pub fn try_edge_id_at(&self, pos: u64) -> Option<u64> {
        Some(self.edge_ids.as_ref()?.get(pos as usize))
    }

    /// Edge ID component at CSR position `pos`. Panics if the decision tree
    /// omitted the array — callers must consult [`Csr::has_edge_ids`].
    /// Query paths validate this once, when the access path is resolved in
    /// `ColumnarGraph::edge_prop_read`, and surface
    /// [`gfcl_common::Error::Storage`] instead of panicking per edge.
    #[inline]
    pub fn edge_id_at(&self, pos: u64) -> u64 {
        self.try_edge_id_at(pos).expect("edge ids not stored for this label")
    }

    pub fn has_edge_ids(&self) -> bool {
        self.edge_ids.is_some()
    }

    /// The raw neighbour array (zero-copy list views in the LBP).
    pub fn nbr_array(&self) -> &UIntArray {
        &self.nbr
    }

    pub fn edge_ids_array(&self) -> Option<&UIntArray> {
        self.edge_ids.as_ref()
    }

    /// Iterate the `(csr position, nbr)` pairs of `v`'s list.
    pub fn iter_list(&self, v: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        let (start, len) = self.list(v);
        (start..start + len as u64).map(move |p| (p, self.nbr_at(p)))
    }

    /// Memory of the offsets structure (the "CSR offsets" cost that vertex
    /// columns avoid for single-cardinality edges — Section 8.4).
    pub fn offsets_bytes(&self) -> usize {
        self.offsets.memory_bytes() + self.empties.overhead_bytes()
    }

    /// Heap bytes held right now (offsets and the empty-list map always
    /// stay resident; the per-edge arrays may be paged).
    pub fn resident_bytes(&self) -> usize {
        self.offsets_bytes()
            + self.nbr.resident_bytes()
            + self.edge_ids.as_ref().map_or(0, UIntArray::resident_bytes)
    }

    /// Per-edge bytes living on disk, faulted through the buffer pool.
    pub fn pageable_bytes(&self) -> usize {
        self.nbr.pageable_bytes() + self.edge_ids.as_ref().map_or(0, UIntArray::pageable_bytes)
    }

    /// Encode for the on-disk format. The per-edge arrays (`nbr`,
    /// `edge_ids`) — the bulk of an adjacency index — go out as page
    /// segments; the offsets structure stays inline so `list()` never
    /// faults a page just to find a list's bounds.
    pub fn encode(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        w.usize(self.n_vertices);
        self.offsets.encode_inline(w);
        self.empties.encode(w);
        self.nbr.encode_seg(w, sink);
        w.opt(self.edge_ids.as_ref(), |w, e| e.encode_seg(w, sink));
    }

    /// Decode a [`Csr::encode`] stream; per-edge arrays come back paged.
    pub fn decode(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<Csr> {
        let n_vertices = r.usize()?;
        let offsets = UIntArray::decode_inline(r)?;
        let empties = NullMap::decode(r)?;
        let nbr = UIntArray::decode_seg(r, src)?;
        let edge_ids = r.opt(|r| UIntArray::decode_seg(r, src))?;
        Ok(Csr { n_vertices, offsets, empties, nbr, edge_ids })
    }
}

impl MemoryUsage for Csr {
    fn memory_bytes(&self) -> usize {
        self.offsets_bytes()
            + self.nbr.memory_bytes()
            + self.edge_ids.as_ref().map_or(0, |e| e.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> (usize, Vec<u64>, Vec<u64>) {
        // 6 vertices; vertices 2 and 5 have empty lists.
        let from = vec![0u64, 0, 1, 3, 3, 3, 4, 0];
        let nbr = vec![1u64, 2, 3, 0, 1, 5, 4, 3];
        (6, from, nbr)
    }

    fn check_lists(csr: &Csr, from: &[u64], nbr: &[u64]) {
        // The multiset of (from, nbr) pairs must round-trip (invariant 4).
        let mut expected: Vec<(u64, u64)> = from.iter().zip(nbr).map(|(&f, &n)| (f, n)).collect();
        expected.sort_unstable();
        let mut actual = Vec::new();
        for v in 0..csr.n_vertices() as u64 {
            for (_, n) in csr.iter_list(v) {
                actual.push((v, n));
            }
        }
        actual.sort_unstable();
        assert_eq!(actual, expected);
    }

    #[test]
    fn build_uncompressed() {
        let (n, from, nbr) = sample_edges();
        let (csr, perm) = Csr::build(n, &from, &nbr, CsrOptions::default());
        assert_eq!(csr.n_edges(), 8);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.degree(2), 0);
        assert_eq!(csr.degree(3), 3);
        check_lists(&csr, &from, &nbr);
        // Permutation maps CSR positions back to input edges.
        for p in 0..csr.n_edges() as u64 {
            let i = perm[p as usize] as usize;
            assert_eq!(csr.nbr_at(p), nbr[i]);
        }
    }

    #[test]
    fn build_with_empty_list_compression() {
        let (n, from, nbr) = sample_edges();
        for kind in [NullKind::jacobson_default(), NullKind::Vanilla, NullKind::Sparse] {
            let opts = CsrOptions { zero_suppress: true, compress_empty: Some(kind) };
            let (csr, _) = Csr::build(n, &from, &nbr, opts);
            assert_eq!(csr.degree(2), 0);
            assert_eq!(csr.degree(5), 0);
            check_lists(&csr, &from, &nbr);
        }
    }

    #[test]
    fn empty_compression_shrinks_offsets_when_sparse() {
        // 1000 vertices, only 10 have edges.
        let from: Vec<u64> = (0..10).map(|i| i * 100).collect();
        let nbr: Vec<u64> = (0..10).collect();
        let unc = Csr::build(1000, &from, &nbr, CsrOptions::default()).0;
        let cmp = Csr::build(
            1000,
            &from,
            &nbr,
            CsrOptions { zero_suppress: true, compress_empty: Some(NullKind::jacobson_default()) },
        )
        .0;
        assert!(cmp.offsets_bytes() < unc.offsets_bytes());
        check_lists(&cmp, &from, &nbr);
    }

    #[test]
    fn zero_suppression_narrows_arrays() {
        let (n, from, nbr) = sample_edges();
        let narrow = Csr::build(n, &from, &nbr, CsrOptions::default()).0;
        let wide =
            Csr::build(n, &from, &nbr, CsrOptions { zero_suppress: false, compress_empty: None }).0;
        assert!(narrow.memory_bytes() < wide.memory_bytes());
        check_lists(&wide, &from, &nbr);
    }

    #[test]
    fn edge_ids_roundtrip() {
        let (n, from, nbr) = sample_edges();
        let (mut csr, _) = Csr::build(n, &from, &nbr, CsrOptions::default());
        assert!(!csr.has_edge_ids());
        assert_eq!(csr.try_edge_id_at(0), None, "omitted array is not a panic");
        let ids: Vec<u64> = (0..8).map(|i| i * 3).collect();
        csr.set_edge_ids(UIntArray::from_values(&ids, true));
        assert!(csr.has_edge_ids());
        for p in 0..8 {
            assert_eq!(csr.edge_id_at(p), p * 3);
        }
    }

    #[test]
    fn dense_null_layout_keeps_full_offsets() {
        // Regression: Uncompressed empty-list "compression" maps positions
        // through the identity, so offsets must not be compacted.
        let (n, from, nbr) = sample_edges();
        let opts = CsrOptions { zero_suppress: true, compress_empty: Some(NullKind::Uncompressed) };
        let (csr, _) = Csr::build(n, &from, &nbr, opts);
        check_lists(&csr, &from, &nbr);
        assert_eq!(csr.degree(5), 0);
    }

    #[test]
    fn encode_roundtrip_faults_lists_back_in() {
        use gfcl_columnar::paged::mem::{MemSink, MemStore};
        use gfcl_common::{Reader, Writer};
        let (n, from, nbr) = sample_edges();
        let opts =
            CsrOptions { zero_suppress: true, compress_empty: Some(NullKind::jacobson_default()) };
        let (mut csr, _) = Csr::build(n, &from, &nbr, opts);
        csr.set_edge_ids(UIntArray::from_values(&[0, 1, 2, 3, 4, 5, 6, 7], true));
        let store = MemStore::new();
        let mut w = Writer::new();
        csr.encode(&mut w, &mut MemSink(store.clone()));
        let bytes = w.into_bytes();
        let back = Csr::decode(&mut Reader::new(&bytes), &store).unwrap();
        assert_eq!(back.n_vertices(), csr.n_vertices());
        assert!(back.pageable_bytes() > 0, "per-edge arrays are paged");
        check_lists(&back, &from, &nbr);
        for p in 0..8 {
            assert_eq!(back.edge_id_at(p), csr.edge_id_at(p));
        }
        assert!(Csr::decode(&mut Reader::new(&bytes[..bytes.len() / 3]), &store).is_err());
    }

    #[test]
    fn no_edges_at_all() {
        let (csr, perm) = Csr::build(5, &[], &[], CsrOptions::default());
        assert!(perm.is_empty());
        for v in 0..5 {
            assert_eq!(csr.degree(v), 0);
        }
        let opts =
            CsrOptions { zero_suppress: true, compress_empty: Some(NullKind::jacobson_default()) };
        let (csr, _) = Csr::build(5, &[], &[], opts);
        assert_eq!(csr.degree(3), 0);
    }
}

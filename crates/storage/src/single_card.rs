//! Vertex-column storage for single-cardinality edges (Section 4.1.2,
//! Figure 4).
//!
//! A 1-1 / 1-n / n-1 edge label has at most one edge per vertex on its
//! single side, so the edge — its neighbour, and its properties — can be
//! stored as ordinary vertex columns of that side, addressed directly by
//! vertex offset. Compared to a CSR this saves the offsets array entirely
//! and removes one indirection per lookup (the Table 4 experiment), and the
//! "vertex has no such edge" case is exactly a NULL, so empty-edge
//! compression reuses the [`NullMap`] machinery (Section 8.4).

use gfcl_columnar::{Column, NullKind, NullMap, SegmentSink, SegmentSource, UIntArray};
use gfcl_common::{MemoryUsage, Reader, Result, Writer};

/// Single-direction adjacency of a single-cardinality edge label, stored as
/// a vertex column of the `from` side.
#[derive(Debug, Clone)]
pub struct SingleCardAdj {
    /// Neighbour offsets, dense (one per vertex) or NULL-compressed.
    nbr: UIntArray,
    /// Which vertices have the edge.
    nulls: NullMap,
    /// Edge properties as vertex columns of this side (present only on the
    /// property side chosen by [`crate::catalog::Cardinality::property_side`]).
    props: Vec<Column>,
}

impl SingleCardAdj {
    /// Build from per-vertex optional neighbours. `kind` is the NULL layout
    /// (Uncompressed keeps a dense neighbour array).
    pub fn build(
        nbrs: &[Option<u64>],
        kind: NullKind,
        zero_suppress: bool,
        props: Vec<Column>,
    ) -> SingleCardAdj {
        let valid: Vec<bool> = nbrs.iter().map(Option::is_some).collect();
        let nulls = NullMap::build(&valid, kind);
        let values: Vec<u64> = if nulls.is_dense() {
            nbrs.iter().map(|n| n.unwrap_or(0)).collect()
        } else {
            nbrs.iter().flatten().copied().collect()
        };
        let nbr = UIntArray::from_values(&values, zero_suppress);
        SingleCardAdj { nbr, nulls, props }
    }

    /// Number of vertices on this side.
    pub fn n_vertices(&self) -> usize {
        self.nulls.len()
    }

    /// Number of edges (vertices that have one).
    pub fn n_edges(&self) -> usize {
        self.nulls.count_valid()
    }

    /// The neighbour of `v`, if `v` has the edge. One constant-time column
    /// read — no CSR offset indirection.
    #[inline]
    pub fn nbr(&self, v: u64) -> Option<u64> {
        self.nulls.physical(v as usize).map(|p| self.nbr.get(p))
    }

    pub fn n_props(&self) -> usize {
        self.props.len()
    }

    /// Edge property column `j`, indexed by vertex offset of this side.
    pub fn prop(&self, j: usize) -> &Column {
        &self.props[j]
    }

    /// Bytes of the adjacency itself (neighbours + validity), excluding
    /// edge properties — the Table 2/4 split between "Adj. Lists" and
    /// "Edge Props".
    pub fn adjacency_bytes(&self) -> usize {
        self.nbr.memory_bytes() + self.nulls.overhead_bytes()
    }

    /// Bytes of the edge property columns.
    pub fn props_bytes(&self) -> usize {
        self.props.iter().map(Column::memory_bytes).sum()
    }

    /// Heap bytes held right now.
    pub fn resident_bytes(&self) -> usize {
        self.nbr.resident_bytes()
            + self.nulls.overhead_bytes()
            + self.props.iter().map(Column::resident_data_bytes).sum::<usize>()
            + self.props.iter().map(Column::null_overhead_bytes).sum::<usize>()
    }

    /// Bytes living on disk, faulted through the buffer pool.
    pub fn pageable_bytes(&self) -> usize {
        self.nbr.pageable_bytes() + self.props.iter().map(Column::pageable_bytes).sum::<usize>()
    }

    /// Encode for the on-disk format: neighbour array and property values
    /// as page segments, the NULL map inline.
    pub fn encode(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        self.nbr.encode_seg(w, sink);
        self.nulls.encode(w);
        w.usize(self.props.len());
        for p in &self.props {
            p.encode(w, sink);
        }
    }

    /// Decode a [`SingleCardAdj::encode`] stream.
    pub fn decode(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<SingleCardAdj> {
        let nbr = UIntArray::decode_seg(r, src)?;
        let nulls = NullMap::decode(r)?;
        let n = r.count()?;
        let mut props = Vec::with_capacity(n);
        for _ in 0..n {
            props.push(Column::decode(r, src)?);
        }
        Ok(SingleCardAdj { nbr, nulls, props })
    }
}

impl MemoryUsage for SingleCardAdj {
    fn memory_bytes(&self) -> usize {
        self.adjacency_bytes() + self.props_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_common::DataType;

    fn nbrs() -> Vec<Option<u64>> {
        vec![Some(3), None, Some(1), None, None, Some(0)]
    }

    #[test]
    fn lookup_all_layouts() {
        for kind in [
            NullKind::Uncompressed,
            NullKind::jacobson_default(),
            NullKind::Vanilla,
            NullKind::Sparse,
            NullKind::Ranges,
        ] {
            let adj = SingleCardAdj::build(&nbrs(), kind, true, vec![]);
            assert_eq!(adj.n_vertices(), 6);
            assert_eq!(adj.n_edges(), 3);
            assert_eq!(adj.nbr(0), Some(3));
            assert_eq!(adj.nbr(1), None);
            assert_eq!(adj.nbr(2), Some(1));
            assert_eq!(adj.nbr(5), Some(0));
        }
    }

    #[test]
    fn null_compression_shrinks_sparse_adjacency() {
        // 10000 vertices, 100 edges: half-full replyOf-style lists.
        let nbrs: Vec<Option<u64>> =
            (0..10_000).map(|i| (i % 100 == 0).then_some(i as u64)).collect();
        let unc = SingleCardAdj::build(&nbrs, NullKind::Uncompressed, true, vec![]);
        let cmp = SingleCardAdj::build(&nbrs, NullKind::jacobson_default(), true, vec![]);
        assert!(cmp.adjacency_bytes() < unc.adjacency_bytes());
        for v in 0..10_000u64 {
            assert_eq!(cmp.nbr(v), unc.nbr(v));
        }
    }

    #[test]
    fn encode_roundtrip_with_props() {
        use gfcl_columnar::paged::mem::{MemSink, MemStore};
        use gfcl_common::{Reader, Writer};
        let doj = Column::from_i64(
            DataType::Int64,
            &[Some(2006), None, Some(2019), None, None, Some(1980)],
            NullKind::jacobson_default(),
        );
        let adj = SingleCardAdj::build(&nbrs(), NullKind::jacobson_default(), true, vec![doj]);
        let store = MemStore::new();
        let mut w = Writer::new();
        adj.encode(&mut w, &mut MemSink(store.clone()));
        let bytes = w.into_bytes();
        let back = SingleCardAdj::decode(&mut Reader::new(&bytes), &store).unwrap();
        assert_eq!(back.n_vertices(), 6);
        assert!(back.pageable_bytes() > 0);
        for v in 0..6u64 {
            assert_eq!(back.nbr(v), adj.nbr(v));
        }
        assert_eq!(back.prop(0).get_i64(0), Some(2006));
        assert_eq!(back.prop(0).get_i64(1), None);
        assert!(SingleCardAdj::decode(&mut Reader::new(&bytes[..5]), &store).is_err());
    }

    #[test]
    fn props_are_vertex_columns() {
        let doj = Column::from_i64(
            DataType::Int64,
            &[Some(2006), None, Some(2019), None, None, Some(1980)],
            NullKind::Uncompressed,
        );
        let adj = SingleCardAdj::build(&nbrs(), NullKind::Uncompressed, true, vec![doj]);
        assert_eq!(adj.n_props(), 1);
        assert_eq!(adj.prop(0).get_i64(0), Some(2006));
        assert_eq!(adj.prop(0).get_i64(1), None);
        assert!(adj.props_bytes() > 0);
        assert!(adj.adjacency_bytes() > 0);
    }
}

//! [`ColumnarGraph`]: the assembled columnar storage layer (Section 4).
//!
//! Built from a [`RawGraph`] under a [`StorageConfig`], it holds:
//!
//! * vertex property columns per label (Section 4.1.2),
//! * forward/backward adjacency indexes per edge label — CSRs for n-n
//!   labels, vertex columns ([`SingleCardAdj`]) for single-cardinality
//!   labels (Table 1),
//! * edge property stores per label ([`EdgePropStore`]): single-indexed
//!   property pages by default, with edge-column and double-indexed
//!   baselines for the Section 8.3 experiments,
//! * a primary-key hash index per vertex label (the constant-time vertex
//!   seek every native GDBMS provides).

use std::collections::HashMap;
use std::sync::Arc;

use gfcl_columnar::{Column, NullKind, SegmentSink, SegmentSource, UIntArray};
use gfcl_common::{
    DataType, Direction, Error, LabelId, MemoryUsage, Reader, Result, Value, Writer,
};

use crate::catalog::Catalog;
use crate::config::{EdgePropLayout, StorageConfig};
use crate::csr::{Csr, CsrOptions};
use crate::edge_store::EdgePropStore;
use crate::pages::PropertyPages;
use crate::raw::{PropData, RawGraph};
use crate::single_card::SingleCardAdj;

/// Adjacency index of one (edge label, direction).
#[derive(Debug, Clone)]
pub enum AdjIndex {
    Csr(Csr),
    SingleCard(SingleCardAdj),
}

impl AdjIndex {
    pub fn as_csr(&self) -> Option<&Csr> {
        match self {
            AdjIndex::Csr(c) => Some(c),
            AdjIndex::SingleCard(_) => None,
        }
    }

    pub fn as_single(&self) -> Option<&SingleCardAdj> {
        match self {
            AdjIndex::SingleCard(s) => Some(s),
            AdjIndex::Csr(_) => None,
        }
    }

    /// Degree of `v` in this direction.
    pub fn degree(&self, v: u64) -> usize {
        match self {
            AdjIndex::Csr(c) => c.degree(v),
            AdjIndex::SingleCard(s) => s.nbr(v).is_some() as usize,
        }
    }

    fn adjacency_bytes(&self) -> usize {
        match self {
            AdjIndex::Csr(c) => c.memory_bytes(),
            AdjIndex::SingleCard(s) => s.adjacency_bytes(),
        }
    }

    /// Bytes living on disk, faulted through the buffer pool (includes
    /// single-cardinality edge property columns, which live here).
    pub fn pageable_bytes(&self) -> usize {
        match self {
            AdjIndex::Csr(c) => c.pageable_bytes(),
            AdjIndex::SingleCard(s) => s.pageable_bytes(),
        }
    }

    fn encode(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        match self {
            AdjIndex::Csr(c) => {
                w.u8(0);
                c.encode(w, sink);
            }
            AdjIndex::SingleCard(s) => {
                w.u8(1);
                s.encode(w, sink);
            }
        }
    }

    fn decode(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<AdjIndex> {
        Ok(match r.u8()? {
            0 => AdjIndex::Csr(Csr::decode(r, src)?),
            1 => AdjIndex::SingleCard(SingleCardAdj::decode(r, src)?),
            t => return Err(Error::Storage(format!("invalid adjacency-index tag {t}"))),
        })
    }
}

/// How to read one edge property during a traversal of `(label, dir)`.
/// Resolved once per operator, then applied per edge in a tight loop.
#[derive(Debug, Clone, Copy)]
pub enum EdgePropRead<'g> {
    /// `flat = csr position` — the sequential indexed-direction read of
    /// property pages and of double-indexed CSRs.
    ByPosition(&'g Column),
    /// `flat = pages.flat_index(src, page_offset)` where `page_offset` is
    /// the stored edge-ID component and `src` is the edge's indexed-side
    /// vertex (the traversal neighbour when walking the opposite
    /// direction).
    ByPageOffset { pages: &'g PropertyPages, col: &'g Column, nbr_is_src: bool },
    /// `flat = stored edge ID` — edge columns and the old (pre-`NEW-IDS`)
    /// ID scheme: a random access per edge.
    ByEdgeId(&'g Column),
    /// Single-cardinality label: read the vertex column of the single
    /// endpoint (`from` itself, or the neighbour if `endpoint_is_nbr`).
    ByVertex { col: &'g Column, endpoint_is_nbr: bool },
}

impl<'g> EdgePropRead<'g> {
    /// The backing column, whatever the index scheme — the place to find
    /// the property's dtype and dictionary.
    pub fn column(&self) -> &'g Column {
        match self {
            EdgePropRead::ByPosition(col)
            | EdgePropRead::ByEdgeId(col)
            | EdgePropRead::ByPageOffset { col, .. }
            | EdgePropRead::ByVertex { col, .. } => col,
        }
    }
}

/// Per-label memory of the four Table 2 components, plus the
/// resident/pageable split introduced by the on-disk format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    pub vertex_props: usize,
    pub edge_props: usize,
    pub fwd_adj: usize,
    pub bwd_adj: usize,
    /// Heap bytes actually held right now: all of [`Self::total`] for a
    /// freshly built graph, only metadata + offsets + NULL maps + zone
    /// maps + dictionaries for a reopened one.
    pub resident: usize,
    /// Bytes that live on disk and are faulted in page-by-page on demand.
    /// Zero for a built (all-in-memory) graph. `resident + pageable`
    /// always equals [`Self::total`], so the paper's Table 2 numbers are
    /// preserved by save/reopen (up to `Vec` capacity slack on the built
    /// side — decoded arrays are allocated exactly).
    pub pageable: usize,
    /// Bytes of disk pages currently cached by the buffer pool (bounded
    /// by its capacity; zero when no pool is attached).
    pub buffer_pool: usize,
}

impl MemoryBreakdown {
    /// Logical bytes of the four Table 2 components — invariant under
    /// save/reopen (the resident/pageable split moves, the total does not).
    pub fn total(&self) -> usize {
        self.vertex_props + self.edge_props + self.fwd_adj + self.bwd_adj
    }
}

/// The read-optimized columnar graph database.
#[derive(Debug, Clone)]
pub struct ColumnarGraph {
    catalog: Catalog,
    config: StorageConfig,
    vertex_counts: Vec<usize>,
    edge_counts: Vec<usize>,
    vertex_props: Vec<Vec<Column>>,
    fwd: Vec<AdjIndex>,
    bwd: Vec<AdjIndex>,
    edge_props: Vec<EdgePropStore>,
    pk: Vec<Option<HashMap<i64, u64>>>,
    /// Random per-build generation stamp, persisted with the graph. Two
    /// builds never share one, even from identical input — the WAL's
    /// baseline fingerprint folds it in so a log can never be mistaken
    /// for another baseline's (e.g. after a count-preserving merge).
    build_nonce: u64,
    /// The buffer pool faulting this graph's pages, if it was opened from
    /// disk. `None` for a built (all-resident) graph.
    pool: Option<Arc<crate::pager::BufferPool>>,
}

/// A fresh generation stamp: `RandomState` seeds from system entropy (per
/// thread, bumped per instance), and the global counter separates calls
/// even under a duplicated entropy source.
fn fresh_nonce() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(SEQ.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

impl ColumnarGraph {
    /// Build from a raw graph under `config`.
    pub fn build(raw: &RawGraph, config: StorageConfig) -> Result<ColumnarGraph> {
        raw.validate()?;
        let mut catalog = raw.catalog.clone();
        // Statistics are deterministic in the raw data, so every engine
        // built from the same RawGraph plans with identical stats.
        catalog.set_stats(crate::stats::Stats::collect(raw));
        let vertex_counts: Vec<usize> = raw.vertices.iter().map(|t| t.count).collect();
        let edge_counts: Vec<usize> = raw.edges.iter().map(|t| t.len()).collect();

        // Vertex property columns (+ their zone maps: scans consult these
        // to skip whole blocks under pushed-down predicates).
        let mut vertex_props = Vec::with_capacity(raw.vertices.len());
        for (lid, table) in raw.vertices.iter().enumerate() {
            let def = catalog.vertex_label(lid as LabelId);
            let mut cols = Vec::with_capacity(table.props.len());
            for (j, prop) in table.props.iter().enumerate() {
                let mut col = prop_to_column(prop, def.properties[j].dtype, &config);
                if config.zone_maps {
                    col.build_zone_map();
                }
                cols.push(col);
            }
            vertex_props.push(cols);
        }

        // Adjacency indexes and edge property stores.
        let mut fwd = Vec::with_capacity(raw.edges.len());
        let mut bwd = Vec::with_capacity(raw.edges.len());
        let mut edge_props = Vec::with_capacity(raw.edges.len());
        for (eid, table) in raw.edges.iter().enumerate() {
            let def = catalog.edge_label(eid as LabelId);
            let n_src = vertex_counts[def.src as usize];
            let n_dst = vertex_counts[def.dst as usize];
            let single_fwd =
                def.cardinality.is_single(Direction::Fwd) && config.single_card_in_vcols;
            let single_bwd =
                def.cardinality.is_single(Direction::Bwd) && config.single_card_in_vcols;

            if single_fwd || single_bwd {
                let prop_side = def.cardinality.property_side().expect("single-card label");
                let (f, b) = build_single_card(
                    table,
                    def.src,
                    def.dst,
                    n_src,
                    n_dst,
                    prop_side,
                    &catalog.edge_label(eid as LabelId).properties,
                    &config,
                    single_fwd,
                    single_bwd,
                )?;
                fwd.push(f);
                bwd.push(b);
                edge_props.push(if def.properties.is_empty() {
                    EdgePropStore::None
                } else {
                    EdgePropStore::InVertexColumns
                });
            } else {
                let (f, b, store) = build_nn(
                    table,
                    n_src,
                    n_dst,
                    &catalog.edge_label(eid as LabelId).properties,
                    &config,
                    eid as u64,
                )?;
                fwd.push(AdjIndex::Csr(f));
                bwd.push(AdjIndex::Csr(b));
                edge_props.push(store);
            }
        }

        // Primary-key hash indexes.
        let mut pk = Vec::with_capacity(raw.vertices.len());
        for (lid, cols) in vertex_props.iter().enumerate() {
            let def = catalog.vertex_label(lid as LabelId);
            pk.push(match def.primary_key {
                Some(j) => {
                    let col = &cols[j];
                    let mut map = HashMap::with_capacity(col.len());
                    for v in 0..col.len() {
                        if let Some(key) = col.get_i64(v) {
                            if map.insert(key, v as u64).is_some() {
                                return Err(Error::Invalid(format!(
                                    "duplicate primary key {key} in {}",
                                    def.name
                                )));
                            }
                        }
                    }
                    Some(map)
                }
                None => None,
            });
        }

        Ok(ColumnarGraph {
            catalog,
            config,
            vertex_counts,
            edge_counts,
            vertex_props,
            fwd,
            bwd,
            edge_props,
            pk,
            build_nonce: fresh_nonce(),
            pool: None,
        })
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The per-build generation stamp (see the field doc). Stable across
    /// save/open; distinct across separate builds.
    pub fn build_nonce(&self) -> u64 {
        self.build_nonce
    }

    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    pub fn vertex_count(&self, label: LabelId) -> usize {
        self.vertex_counts[label as usize]
    }

    pub fn edge_count(&self, label: LabelId) -> usize {
        self.edge_counts[label as usize]
    }

    pub fn vertex_prop(&self, label: LabelId, prop: usize) -> &Column {
        &self.vertex_props[label as usize][prop]
    }

    /// Adjacency index of `(label, dir)`.
    pub fn adj(&self, label: LabelId, dir: Direction) -> &AdjIndex {
        match dir {
            Direction::Fwd => &self.fwd[label as usize],
            Direction::Bwd => &self.bwd[label as usize],
        }
    }

    pub fn edge_prop_store(&self, label: LabelId) -> &EdgePropStore {
        &self.edge_props[label as usize]
    }

    /// Constant-time primary-key seek.
    pub fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64> {
        self.pk[label as usize].as_ref()?.get(&key).copied()
    }

    /// Validate that `(label, dir)` can serve an access path that reads
    /// the stored edge-ID component: the adjacency must be a CSR *and* the
    /// Figure 6 decision tree must have kept its edge-ID array. Checked
    /// once at [`EdgePropRead`] resolution so per-edge reads never panic on
    /// a layout that omitted the IDs.
    fn require_edge_ids(&self, label: LabelId, dir: Direction) -> Result<()> {
        let def = self.catalog.edge_label(label);
        let csr = self.adj(label, dir).as_csr().ok_or_else(|| {
            Error::Storage(format!(
                "edge label {} has no CSR in direction {dir}; cannot resolve edge IDs",
                def.name
            ))
        })?;
        if !csr.has_edge_ids() {
            return Err(Error::Storage(format!(
                "edge IDs not stored for label {} in direction {dir}: this layout cannot \
                 resolve edge property reads",
                def.name
            )));
        }
        Ok(())
    }

    /// Resolve the access path for edge property `prop` when traversing
    /// `(label, dir)` (see [`EdgePropRead`]).
    pub fn edge_prop_read(
        &self,
        label: LabelId,
        dir: Direction,
        prop: usize,
    ) -> Result<EdgePropRead<'_>> {
        let def = self.catalog.edge_label(label);
        match &self.edge_props[label as usize] {
            EdgePropStore::None => {
                Err(Error::Exec(format!("edge label {} has no properties", def.name)))
            }
            EdgePropStore::Pages(pp) => {
                self.require_edge_ids(label, dir)?;
                if self.config.new_ids {
                    // Both directions resolve through (indexed-side vertex,
                    // page-level positional offset). Forward reads touch one
                    // small page per list (close-by memory, Desideratum 1);
                    // backward reads are constant-time random accesses.
                    Ok(EdgePropRead::ByPageOffset {
                        pages: pp,
                        col: pp.prop(prop),
                        nbr_is_src: dir == Direction::Bwd,
                    })
                } else {
                    // Old ID scheme: stored 8-byte global edge IDs index the
                    // flat property storage directly.
                    Ok(EdgePropRead::ByEdgeId(pp.prop(prop)))
                }
            }
            EdgePropStore::Columns { props } => {
                self.require_edge_ids(label, dir)?;
                Ok(EdgePropRead::ByEdgeId(&props[prop]))
            }
            EdgePropStore::DoubleIndexed { fwd, bwd } => Ok(EdgePropRead::ByPosition(match dir {
                Direction::Fwd => &fwd[prop],
                Direction::Bwd => &bwd[prop],
            })),
            EdgePropStore::InVertexColumns => {
                let prop_side = def.cardinality.property_side().expect("single-card");
                let adj = self.adj(label, prop_side);
                let col = adj
                    .as_single()
                    .expect("property side of a single-card label is a vertex column")
                    .prop(prop);
                Ok(EdgePropRead::ByVertex { col, endpoint_is_nbr: dir != prop_side })
            }
        }
    }

    /// Scalar edge-property read for tuple-at-a-time engines: `from` is the
    /// traversal source vertex, `csr_pos` its CSR position (`None` for
    /// single-cardinality traversals).
    pub fn read_edge_prop(
        &self,
        label: LabelId,
        dir: Direction,
        from: u64,
        csr_pos: Option<u64>,
        prop: usize,
    ) -> Result<Value> {
        let read = self.edge_prop_read(label, dir, prop)?;
        let (col, flat) = self.resolve_edge_prop(read, label, dir, from, csr_pos);
        Ok(col.value(flat as usize))
    }

    /// Resolve an [`EdgePropRead`] to `(column, flat index)` for one edge.
    #[inline]
    pub fn resolve_edge_prop<'g>(
        &'g self,
        read: EdgePropRead<'g>,
        label: LabelId,
        dir: Direction,
        from: u64,
        csr_pos: Option<u64>,
    ) -> (&'g Column, u64) {
        match read {
            EdgePropRead::ByPosition(col) => (col, csr_pos.expect("CSR traversal")),
            EdgePropRead::ByEdgeId(col) => {
                let csr = self.adj(label, dir).as_csr().expect("CSR traversal");
                (col, csr.edge_id_at(csr_pos.expect("CSR traversal")))
            }
            EdgePropRead::ByPageOffset { pages, col, nbr_is_src } => {
                let csr = self.adj(label, dir).as_csr().expect("CSR traversal");
                let pos = csr_pos.expect("CSR traversal");
                let src = if nbr_is_src { csr.nbr_at(pos) } else { from };
                (col, pages.flat_index(src, csr.edge_id_at(pos)))
            }
            EdgePropRead::ByVertex { col, endpoint_is_nbr } => {
                let endpoint = if endpoint_is_nbr {
                    match self.adj(label, dir) {
                        AdjIndex::Csr(c) => c.nbr_at(csr_pos.expect("CSR traversal")),
                        AdjIndex::SingleCard(s) => {
                            s.nbr(from).expect("edge exists for traversed vertex")
                        }
                    }
                } else {
                    from
                };
                (col, endpoint)
            }
        }
    }

    /// Memory of one edge label's storage, split as
    /// `(fwd adjacency, bwd adjacency, edge properties)` — used by the
    /// Table 4 experiment to report per-label costs.
    pub fn edge_label_memory(&self, label: LabelId) -> (usize, usize, usize) {
        let fwd = self.fwd[label as usize].adjacency_bytes();
        let bwd = self.bwd[label as usize].adjacency_bytes();
        let mut props = self.edge_props[label as usize].memory_bytes();
        for adj in [&self.fwd[label as usize], &self.bwd[label as usize]] {
            if let AdjIndex::SingleCard(s) = adj {
                props += s.props_bytes();
            }
        }
        (fwd, bwd, props)
    }

    /// Memory of the four Table 2 components.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let vertex_props =
            self.vertex_props.iter().flat_map(|cols| cols.iter()).map(Column::memory_bytes).sum();
        let mut edge_props: usize = self.edge_props.iter().map(EdgePropStore::memory_bytes).sum();
        // Single-cardinality edge properties live inside the SingleCardAdj
        // vertex columns; count them as edge properties, per Table 2.
        for adj in self.fwd.iter().chain(&self.bwd) {
            if let AdjIndex::SingleCard(s) = adj {
                edge_props += s.props_bytes();
            }
        }
        let fwd_adj = self.fwd.iter().map(AdjIndex::adjacency_bytes).sum();
        let bwd_adj = self.bwd.iter().map(AdjIndex::adjacency_bytes).sum();
        let pageable = self
            .vertex_props
            .iter()
            .flat_map(|cols| cols.iter())
            .map(Column::pageable_bytes)
            .sum::<usize>()
            + self.fwd.iter().chain(&self.bwd).map(AdjIndex::pageable_bytes).sum::<usize>()
            + self.edge_props.iter().map(EdgePropStore::pageable_bytes).sum::<usize>();
        let total = vertex_props + edge_props + fwd_adj + bwd_adj;
        MemoryBreakdown {
            vertex_props,
            edge_props,
            fwd_adj,
            bwd_adj,
            resident: total.saturating_sub(pageable),
            pageable,
            buffer_pool: self.pool.as_ref().map_or(0, |p| p.occupancy_bytes()),
        }
    }

    /// The buffer pool backing a reopened graph (`None` when fully
    /// in-memory). Exposes fault/hit/eviction/skip counters.
    pub fn buffer_pool(&self) -> Option<&crate::pager::BufferPool> {
        self.pool.as_deref()
    }

    pub(crate) fn set_pool(&mut self, pool: Arc<crate::pager::BufferPool>) {
        // Reflect the pool actually attached (env override included) so
        // `config()` reports the truth for this process, not the saved value.
        self.config.buffer_pool_pages = pool.capacity();
        self.pool = Some(pool);
    }

    /// Encode everything except page data into `w`; large value arrays go
    /// to `sink` as page-aligned segments. Inverse of [`Self::decode_meta`].
    pub(crate) fn encode_meta(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        w.u64(self.build_nonce);
        self.config.encode(w);
        self.catalog.encode(w);
        w.usize(self.vertex_counts.len());
        for &c in &self.vertex_counts {
            w.usize(c);
        }
        w.usize(self.edge_counts.len());
        for &c in &self.edge_counts {
            w.usize(c);
        }
        w.usize(self.vertex_props.len());
        for cols in &self.vertex_props {
            w.usize(cols.len());
            for col in cols {
                col.encode(w, sink);
            }
        }
        w.usize(self.fwd.len());
        for adj in &self.fwd {
            adj.encode(w, sink);
        }
        w.usize(self.bwd.len());
        for adj in &self.bwd {
            adj.encode(w, sink);
        }
        w.usize(self.edge_props.len());
        for ep in &self.edge_props {
            ep.encode(w, sink);
        }
        // Primary-key maps as sorted (key, vertex) pairs: rebuilding them
        // from the key column would fault every page at open time.
        w.usize(self.pk.len());
        for m in &self.pk {
            w.opt(m.as_ref(), |w, m| {
                let mut pairs: Vec<(i64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
                pairs.sort_unstable();
                w.usize(pairs.len());
                for (k, v) in pairs {
                    w.i64(k);
                    w.u64(v);
                }
            });
        }
    }

    /// Decode an [`Self::encode_meta`] stream; paged arrays keep `src` and
    /// fault their values on first touch. The result has no pool attached
    /// ([`crate::format`] sets it after open).
    pub(crate) fn decode_meta(
        r: &mut Reader<'_>,
        src: &dyn SegmentSource,
    ) -> Result<ColumnarGraph> {
        let build_nonce = r.u64()?;
        let config = StorageConfig::decode(r)?;
        let catalog = Catalog::decode(r)?;
        let n_vc = r.count()?;
        let mut vertex_counts = Vec::with_capacity(n_vc);
        for _ in 0..n_vc {
            vertex_counts.push(r.usize()?);
        }
        let n_ec = r.count()?;
        let mut edge_counts = Vec::with_capacity(n_ec);
        for _ in 0..n_ec {
            edge_counts.push(r.usize()?);
        }
        let n_vp = r.count()?;
        let mut vertex_props = Vec::with_capacity(n_vp);
        for _ in 0..n_vp {
            let n_cols = r.count()?;
            let mut cols = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                cols.push(Column::decode(r, src)?);
            }
            vertex_props.push(cols);
        }
        let n_fwd = r.count()?;
        let mut fwd = Vec::with_capacity(n_fwd);
        for _ in 0..n_fwd {
            fwd.push(AdjIndex::decode(r, src)?);
        }
        let n_bwd = r.count()?;
        let mut bwd = Vec::with_capacity(n_bwd);
        for _ in 0..n_bwd {
            bwd.push(AdjIndex::decode(r, src)?);
        }
        let n_ep = r.count()?;
        let mut edge_props = Vec::with_capacity(n_ep);
        for _ in 0..n_ep {
            edge_props.push(EdgePropStore::decode(r, src)?);
        }
        let n_pk = r.count()?;
        let mut pk = Vec::with_capacity(n_pk);
        for _ in 0..n_pk {
            pk.push(r.opt(|r| {
                let n = r.count()?;
                let mut map = HashMap::with_capacity(n);
                for _ in 0..n {
                    let k = r.i64()?;
                    let v = r.u64()?;
                    map.insert(k, v);
                }
                Ok(map)
            })?);
        }
        // Cross-check the decoded shape against the catalog so a truncated
        // or tampered metadata stream fails here, not deep inside a query.
        let nv = catalog.vertex_label_count();
        let ne = catalog.edge_label_count();
        if vertex_counts.len() != nv
            || vertex_props.len() != nv
            || pk.len() != nv
            || edge_counts.len() != ne
            || fwd.len() != ne
            || bwd.len() != ne
            || edge_props.len() != ne
        {
            return Err(Error::Storage("metadata shape disagrees with catalog".into()));
        }
        Ok(ColumnarGraph {
            catalog,
            config,
            vertex_counts,
            edge_counts,
            vertex_props,
            fwd,
            bwd,
            edge_props,
            pk,
            build_nonce,
            pool: None,
        })
    }
}

/// NULL layout for a column with/without NULLs under `config`.
fn pick_kind(has_nulls: bool, config: &StorageConfig) -> NullKind {
    if !has_nulls {
        NullKind::None
    } else if config.null_compress {
        config.null_kind
    } else {
        NullKind::Uncompressed
    }
}

/// Convert a raw property column (identity order).
fn prop_to_column(prop: &PropData, dtype: DataType, config: &StorageConfig) -> Column {
    let kind = pick_kind(prop.null_fraction() > 0.0, config);
    match prop {
        PropData::I64(v) => Column::from_i64(dtype, v, kind),
        PropData::F64(v) => Column::from_f64(v, kind),
        PropData::Bool(v) => Column::from_bool(v, kind),
        PropData::Str(v) => {
            let refs: Vec<Option<&str>> = v.iter().map(|s| s.as_deref()).collect();
            Column::from_str(&refs, kind, true)
        }
    }
}

/// Gather a raw property column into a new order: `out[p] = prop[order[p]]`.
fn gather_column(
    prop: &PropData,
    dtype: DataType,
    order: &[u64],
    config: &StorageConfig,
) -> Column {
    match prop {
        PropData::I64(v) => {
            let g: Vec<Option<i64>> = order.iter().map(|&i| v[i as usize]).collect();
            Column::from_i64(dtype, &g, pick_kind(g.iter().any(Option::is_none), config))
        }
        PropData::F64(v) => {
            let g: Vec<Option<f64>> = order.iter().map(|&i| v[i as usize]).collect();
            Column::from_f64(&g, pick_kind(g.iter().any(Option::is_none), config))
        }
        PropData::Bool(v) => {
            let g: Vec<Option<bool>> = order.iter().map(|&i| v[i as usize]).collect();
            Column::from_bool(&g, pick_kind(g.iter().any(Option::is_none), config))
        }
        PropData::Str(v) => {
            let g: Vec<Option<&str>> = order.iter().map(|&i| v[i as usize].as_deref()).collect();
            Column::from_str(&g, pick_kind(g.iter().any(Option::is_none), config), true)
        }
    }
}

/// Scatter a raw property column to vertex slots: `out[keys[i]] = prop[i]`.
fn scatter_column(
    prop: &PropData,
    dtype: DataType,
    keys: &[u64],
    n: usize,
    config: &StorageConfig,
) -> Column {
    match prop {
        PropData::I64(v) => {
            let mut out: Vec<Option<i64>> = vec![None; n];
            for (i, &k) in keys.iter().enumerate() {
                out[k as usize] = v[i];
            }
            Column::from_i64(dtype, &out, pick_kind(out.iter().any(Option::is_none), config))
        }
        PropData::F64(v) => {
            let mut out: Vec<Option<f64>> = vec![None; n];
            for (i, &k) in keys.iter().enumerate() {
                out[k as usize] = v[i];
            }
            Column::from_f64(&out, pick_kind(out.iter().any(Option::is_none), config))
        }
        PropData::Bool(v) => {
            let mut out: Vec<Option<bool>> = vec![None; n];
            for (i, &k) in keys.iter().enumerate() {
                out[k as usize] = v[i];
            }
            Column::from_bool(&out, pick_kind(out.iter().any(Option::is_none), config))
        }
        PropData::Str(v) => {
            let mut out: Vec<Option<&str>> = vec![None; n];
            for (i, &k) in keys.iter().enumerate() {
                out[k as usize] = v[i].as_deref();
            }
            Column::from_str(&out, pick_kind(out.iter().any(Option::is_none), config), true)
        }
    }
}

/// Deterministic pseudo-random permutation of `0..n` (edge-column baseline:
/// "edges are given random edge IDs").
fn pseudo_shuffle(n: usize, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n as u64).collect();
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

#[allow(clippy::too_many_arguments)]
fn build_single_card(
    table: &crate::raw::EdgeTable,
    _src_label: LabelId,
    _dst_label: LabelId,
    n_src: usize,
    n_dst: usize,
    prop_side: Direction,
    prop_defs: &[crate::catalog::PropertyDef],
    config: &StorageConfig,
    single_fwd: bool,
    single_bwd: bool,
) -> Result<(AdjIndex, AdjIndex)> {
    let kind = pick_kind(true, config); // absent edges are NULLs
    let build_side = |from: &[u64], nbrs: &[u64], n_from: usize, with_props: bool| {
        let mut opt: Vec<Option<u64>> = vec![None; n_from];
        for (i, &f) in from.iter().enumerate() {
            opt[f as usize] = Some(nbrs[i]);
        }
        let props = if with_props {
            prop_defs
                .iter()
                .enumerate()
                .map(|(j, def)| scatter_column(&table.props[j], def.dtype, from, n_from, config))
                .collect()
        } else {
            Vec::new()
        };
        SingleCardAdj::build(&opt, kind, config.zero_suppress, props)
    };

    let fwd: AdjIndex = if single_fwd {
        AdjIndex::SingleCard(build_side(&table.src, &table.dst, n_src, prop_side == Direction::Fwd))
    } else {
        // n-side of a 1-n label: plain CSR without edge IDs (decision tree:
        // single cardinality => no positional offsets).
        let opts = CsrOptions {
            zero_suppress: config.zero_suppress,
            compress_empty: config.null_compress.then_some(config.null_kind),
        };
        let (csr, _) = Csr::build(n_src, &table.src, &table.dst, opts);
        AdjIndex::Csr(csr)
    };
    let bwd: AdjIndex = if single_bwd {
        AdjIndex::SingleCard(build_side(&table.dst, &table.src, n_dst, prop_side == Direction::Bwd))
    } else {
        let opts = CsrOptions {
            zero_suppress: config.zero_suppress,
            compress_empty: config.null_compress.then_some(config.null_kind),
        };
        let (csr, _) = Csr::build(n_dst, &table.dst, &table.src, opts);
        AdjIndex::Csr(csr)
    };
    Ok((fwd, bwd))
}

fn build_nn(
    table: &crate::raw::EdgeTable,
    n_src: usize,
    n_dst: usize,
    prop_defs: &[crate::catalog::PropertyDef],
    config: &StorageConfig,
    label_seed: u64,
) -> Result<(Csr, Csr, EdgePropStore)> {
    let opts = CsrOptions {
        zero_suppress: config.zero_suppress,
        compress_empty: config.null_compress.then_some(config.null_kind),
    };
    let (mut fwd, perm_f) = Csr::build(n_src, &table.src, &table.dst, opts);
    let (mut bwd, perm_b) = Csr::build(n_dst, &table.dst, &table.src, opts);
    let m = table.len();
    let has_props = !prop_defs.is_empty();

    // Old ID scheme: 8-byte global edge IDs stored for EVERY edge in both
    // directions, properties or not.
    if !config.new_ids {
        if !has_props {
            // Global IDs are the input edge indexes.
            let fwd_ids: Vec<u64> = perm_f.clone();
            let bwd_ids: Vec<u64> = perm_b.clone();
            fwd.set_edge_ids(UIntArray::from_values(&fwd_ids, config.zero_suppress));
            bwd.set_edge_ids(UIntArray::from_values(&bwd_ids, config.zero_suppress));
            return Ok((fwd, bwd, EdgePropStore::None));
        }
        // Properties live in page-grouped flat storage; the stored global
        // IDs are the flat positions.
        let assign = crate::pages::assign_insertion_order(pages_k(config), n_src, &table.src);
        let cols = prop_defs
            .iter()
            .enumerate()
            .map(|(j, def)| {
                scatter_column(&table.props[j], def.dtype, &assign.flat_of_input, m, config)
            })
            .collect();
        let pp = PropertyPages::from_assignment(pages_k(config), &assign, cols);
        let fwd_ids: Vec<u64> = perm_f.iter().map(|&i| assign.flat_of_input[i as usize]).collect();
        let bwd_ids: Vec<u64> = perm_b.iter().map(|&i| assign.flat_of_input[i as usize]).collect();
        fwd.set_edge_ids(UIntArray::from_values(&fwd_ids, config.zero_suppress));
        bwd.set_edge_ids(UIntArray::from_values(&bwd_ids, config.zero_suppress));
        return Ok((fwd, bwd, EdgePropStore::Pages(pp)));
    }

    // New ID scheme, Figure 6 decision tree: no properties => no edge IDs.
    if !has_props {
        return Ok((fwd, bwd, EdgePropStore::None));
    }

    match config.edge_prop_layout {
        EdgePropLayout::Pages { k } => {
            // Pages fill in edge-insertion order: within a page the k lists
            // interleave but stay in close-by memory (Section 4.2).
            let assign = crate::pages::assign_insertion_order(k, n_src, &table.src);
            let cols = prop_defs
                .iter()
                .enumerate()
                .map(|(j, def)| {
                    scatter_column(&table.props[j], def.dtype, &assign.flat_of_input, m, config)
                })
                .collect();
            let pp = PropertyPages::from_assignment(k, &assign, cols);
            // Page-level positional offsets, stored in both directions.
            let fwd_offs: Vec<u64> =
                perm_f.iter().map(|&i| assign.slot_of_input[i as usize]).collect();
            let bwd_offs: Vec<u64> =
                perm_b.iter().map(|&i| assign.slot_of_input[i as usize]).collect();
            fwd.set_edge_ids(UIntArray::from_values(&fwd_offs, config.zero_suppress));
            bwd.set_edge_ids(UIntArray::from_values(&bwd_offs, config.zero_suppress));
            Ok((fwd, bwd, EdgePropStore::Pages(pp)))
        }
        EdgePropLayout::EdgeColumns => {
            let rid = pseudo_shuffle(m, 0xC0FFEE ^ label_seed);
            let props = prop_defs
                .iter()
                .enumerate()
                .map(|(j, def)| scatter_column(&table.props[j], def.dtype, &rid, m, config))
                .collect();
            let fwd_ids: Vec<u64> = perm_f.iter().map(|&i| rid[i as usize]).collect();
            let bwd_ids: Vec<u64> = perm_b.iter().map(|&i| rid[i as usize]).collect();
            fwd.set_edge_ids(UIntArray::from_values(&fwd_ids, config.zero_suppress));
            bwd.set_edge_ids(UIntArray::from_values(&bwd_ids, config.zero_suppress));
            Ok((fwd, bwd, EdgePropStore::Columns { props }))
        }
        EdgePropLayout::DoubleIndexed => {
            let fwd_cols = prop_defs
                .iter()
                .enumerate()
                .map(|(j, def)| gather_column(&table.props[j], def.dtype, &perm_f, config))
                .collect();
            let bwd_cols = prop_defs
                .iter()
                .enumerate()
                .map(|(j, def)| gather_column(&table.props[j], def.dtype, &perm_b, config))
                .collect();
            Ok((fwd, bwd, EdgePropStore::DoubleIndexed { fwd: fwd_cols, bwd: bwd_cols }))
        }
    }
}

fn pages_k(config: &StorageConfig) -> usize {
    match config.edge_prop_layout {
        EdgePropLayout::Pages { k } => k,
        _ => EdgePropLayout::DEFAULT_K,
    }
}

impl MemoryUsage for ColumnarGraph {
    fn memory_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawGraph;

    fn configs() -> Vec<StorageConfig> {
        let mut v: Vec<StorageConfig> =
            StorageConfig::ladder().into_iter().map(|(_, c)| c).collect();
        v.push(StorageConfig {
            edge_prop_layout: EdgePropLayout::EdgeColumns,
            ..StorageConfig::default()
        });
        v.push(StorageConfig {
            edge_prop_layout: EdgePropLayout::DoubleIndexed,
            ..StorageConfig::default()
        });
        v.push(StorageConfig { single_card_in_vcols: false, ..StorageConfig::default() });
        v.push(StorageConfig {
            edge_prop_layout: EdgePropLayout::Pages { k: 2 },
            ..StorageConfig::default()
        });
        v
    }

    /// Collect (src, dst, since) triples through forward traversal.
    fn follows_triples(g: &ColumnarGraph) -> Vec<(u64, u64, i64)> {
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        let csr = g.adj(follows, Direction::Fwd).as_csr().unwrap();
        let mut out = Vec::new();
        for v in 0..g.vertex_count(0) as u64 {
            for (pos, nbr) in csr.iter_list(v) {
                let since = g
                    .read_edge_prop(follows, Direction::Fwd, v, Some(pos), 0)
                    .unwrap()
                    .as_i64()
                    .unwrap();
                out.push((v, nbr, since));
            }
        }
        out.sort_unstable();
        out
    }

    fn expected_follows() -> Vec<(u64, u64, i64)> {
        let mut v = vec![
            (0u64, 1u64, 2003i64),
            (1, 2, 2009),
            (0, 3, 1999),
            (1, 3, 2006),
            (2, 3, 2015),
            (3, 1, 2012),
            (2, 1, 1992),
            (2, 0, 2011),
        ];
        v.sort_unstable();
        v
    }

    #[test]
    fn forward_traversal_all_configs() {
        let raw = RawGraph::example();
        for cfg in configs() {
            let g = ColumnarGraph::build(&raw, cfg).unwrap();
            assert_eq!(follows_triples(&g), expected_follows(), "{cfg:?}");
        }
    }

    #[test]
    fn backward_traversal_reads_same_properties() {
        let raw = RawGraph::example();
        for cfg in configs() {
            let g = ColumnarGraph::build(&raw, cfg).unwrap();
            let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
            let csr = g.adj(follows, Direction::Bwd).as_csr().unwrap();
            let mut out = Vec::new();
            for v in 0..g.vertex_count(0) as u64 {
                for (pos, nbr) in csr.iter_list(v) {
                    let since = g
                        .read_edge_prop(follows, Direction::Bwd, v, Some(pos), 0)
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    out.push((nbr, v, since)); // (src, dst, prop)
                }
            }
            out.sort_unstable();
            assert_eq!(out, expected_follows(), "{cfg:?}");
        }
    }

    #[test]
    fn single_cardinality_edges_in_vertex_columns() {
        let raw = RawGraph::example();
        let g = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
        let workat = g.catalog().edge_label_id("WORKAT").unwrap();
        let adj = g.adj(workat, Direction::Fwd).as_single().unwrap();
        assert_eq!(adj.nbr(0), Some(0)); // alice -> UW
        assert_eq!(adj.nbr(1), Some(1)); // bob -> UofT
        assert_eq!(adj.nbr(2), None); // peter doesn't work
                                      // doj readable from both directions.
        assert_eq!(
            g.read_edge_prop(workat, Direction::Fwd, 0, None, 0).unwrap(),
            Value::Int64(2006)
        );
        let bwd = g.adj(workat, Direction::Bwd).as_csr().unwrap();
        let (pos, nbr) = bwd.iter_list(1).next().unwrap(); // UofT's workers
        assert_eq!(nbr, 1); // bob
        assert_eq!(
            g.read_edge_prop(workat, Direction::Bwd, 1, Some(pos), 0).unwrap(),
            Value::Int64(1980)
        );
    }

    #[test]
    fn single_card_disabled_falls_back_to_csr() {
        let raw = RawGraph::example();
        let cfg = StorageConfig { single_card_in_vcols: false, ..StorageConfig::default() };
        let g = ColumnarGraph::build(&raw, cfg).unwrap();
        let workat = g.catalog().edge_label_id("WORKAT").unwrap();
        let csr = g.adj(workat, Direction::Fwd).as_csr().unwrap();
        assert_eq!(csr.degree(0), 1);
        let (pos, nbr) = csr.iter_list(0).next().unwrap();
        assert_eq!(nbr, 0);
        assert_eq!(
            g.read_edge_prop(workat, Direction::Fwd, 0, Some(pos), 0).unwrap(),
            Value::Int64(2006)
        );
    }

    #[test]
    fn vertex_props_and_pk() {
        let raw = RawGraph::example();
        let g = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
        let person = g.catalog().vertex_label_id("PERSON").unwrap();
        assert_eq!(g.vertex_prop(person, 0).get_str(1), Some("bob"));
        assert_eq!(g.vertex_prop(person, 1).get_i64(2), Some(17));
        assert_eq!(g.vertex_count(person), 4);
    }

    /// A larger sparse graph where each ladder step has something to save:
    /// 5000 vertices, one sparse property, one n-n label with a property
    /// and one property-less n-n label, both with many empty lists.
    fn sparse_raw() -> RawGraph {
        use crate::catalog::{Cardinality, PropertyDef};
        let mut cat = Catalog::new();
        let node =
            cat.add_vertex_label("NODE", vec![PropertyDef::new("ts", DataType::Int64)]).unwrap();
        let rel = cat
            .add_edge_label(
                "REL",
                node,
                node,
                Cardinality::ManyMany,
                vec![PropertyDef::new("w", DataType::Int64)],
            )
            .unwrap();
        let link = cat.add_edge_label("LINK", node, node, Cardinality::ManyMany, vec![]).unwrap();
        let mut raw = RawGraph::new(cat);
        let n = 5000usize;
        raw.vertices[node as usize].count = n;
        for v in 0..n {
            if v % 5 == 0 {
                raw.vertices[node as usize].props[0].push_i64(v as i64);
            } else {
                raw.vertices[node as usize].props[0].push_null();
            }
        }
        for (eid, stride) in [(rel, 7usize), (link, 11usize)] {
            let t = &mut raw.edges[eid as usize];
            for v in (0..n).step_by(stride) {
                for d in 1..4u64 {
                    t.src.push(v as u64);
                    t.dst.push((v as u64 * 31 + d * 97) % n as u64);
                    if eid == rel {
                        t.props[0].push_i64((v as i64) * 3 + d as i64);
                    }
                }
            }
        }
        raw.validate().unwrap();
        raw
    }

    #[test]
    fn memory_ladder_is_monotone_decreasing() {
        let raw = sparse_raw();
        let mut last = usize::MAX;
        for (name, cfg) in StorageConfig::ladder() {
            let g = ColumnarGraph::build(&raw, cfg).unwrap();
            let total = g.memory_breakdown().total();
            assert!(total <= last, "{name} should not increase memory ({total} > {last})");
            last = total;
        }
        // And the full config should beat the row store.
        let row = crate::row_graph::RowGraph::build(&raw).unwrap();
        assert!(row.memory_breakdown().total() > last);
    }

    #[test]
    fn traversals_agree_on_sparse_graph_across_configs() {
        let raw = sparse_raw();
        let reference = ColumnarGraph::build(&raw, StorageConfig::cols()).unwrap();
        let rel = reference.catalog().edge_label_id("REL").unwrap();
        for cfg in configs() {
            let g = ColumnarGraph::build(&raw, cfg).unwrap();
            for dir in [Direction::Fwd, Direction::Bwd] {
                let a = reference.adj(rel, dir).as_csr().unwrap();
                let b = g.adj(rel, dir).as_csr().unwrap();
                for v in (0..5000u64).step_by(137) {
                    let mut la: Vec<(u64, i64)> = a
                        .iter_list(v)
                        .map(|(pos, nbr)| {
                            let w = reference
                                .read_edge_prop(rel, dir, v, Some(pos), 0)
                                .unwrap()
                                .as_i64()
                                .unwrap();
                            (nbr, w)
                        })
                        .collect();
                    let mut lb: Vec<(u64, i64)> = b
                        .iter_list(v)
                        .map(|(pos, nbr)| {
                            let w = g
                                .read_edge_prop(rel, dir, v, Some(pos), 0)
                                .unwrap()
                                .as_i64()
                                .unwrap();
                            (nbr, w)
                        })
                        .collect();
                    la.sort_unstable();
                    lb.sort_unstable();
                    assert_eq!(la, lb, "{cfg:?} {dir} v={v}");
                }
            }
        }
    }

    #[test]
    fn missing_edge_ids_surface_a_storage_error() {
        // Regression: resolving an edge property read against a CSR whose
        // layout omitted the edge-ID array used to panic per edge inside
        // `Csr::edge_id_at`; it must fail at resolution with Error::Storage.
        let raw = RawGraph::example();
        let mut g = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        let t = &raw.edges[follows as usize];
        let (bare, _) = Csr::build(g.vertex_count(0), &t.src, &t.dst, CsrOptions::default());
        assert!(!bare.has_edge_ids());
        g.fwd[follows as usize] = AdjIndex::Csr(bare);
        let err = g.edge_prop_read(follows, Direction::Fwd, 0).unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err:?}");
        assert!(err.to_string().contains("edge IDs not stored"));
        // The untouched backward direction still resolves.
        assert!(g.edge_prop_read(follows, Direction::Bwd, 0).is_ok());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut raw = RawGraph::example();
        let mut cat = raw.catalog.clone();
        // Make `age` a pk and introduce a duplicate.
        cat.set_primary_key(0, "age").unwrap();
        raw.catalog = cat;
        if let crate::raw::PropData::I64(v) = &mut raw.vertices[0].props[1] {
            v[0] = Some(54); // same as bob
        }
        assert!(ColumnarGraph::build(&raw, StorageConfig::default()).is_err());
    }
}

//! The catalog: vertex/edge label definitions, structured property schemas
//! and cardinality constraints (Guideline 3 / Desideratum 3).
//!
//! The paper observes that graph data often has *partial structure*:
//! (i) an edge label determines its endpoint vertex labels, (ii) a label
//! determines its properties and their datatypes, and (iii) edges may have
//! cardinality constraints. The catalog records exactly this structure; the
//! storage layer exploits it for ID factoring (Section 5.2) and vertex-column
//! storage of single-cardinality edges (Section 4.1.2).

use std::collections::HashMap;

use gfcl_common::{DataType, Direction, Error, LabelId, Reader, Result, Writer};

use crate::stats::Stats;

/// A structured property: name + datatype (structure point (ii)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    pub name: String,
    pub dtype: DataType,
}

impl PropertyDef {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        PropertyDef { name: name.into(), dtype }
    }
}

/// Edge cardinality constraint (structure point (iii)).
///
/// Directions follow the paper's convention: *n-1* means each source has at
/// most one out-edge (single cardinality in the forward direction); *1-n*
/// means each destination has at most one in-edge (single backward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// 1-1: single in both directions.
    OneOne,
    /// 1-n: single cardinality in the backward direction.
    OneMany,
    /// n-1: single cardinality in the forward direction.
    ManyOne,
    /// n-n: no constraint; stored in CSRs.
    ManyMany,
}

impl Cardinality {
    /// Does each vertex have at most one edge when traversing in `dir`?
    pub fn is_single(self, dir: Direction) -> bool {
        matches!(
            (self, dir),
            (Cardinality::OneOne, _)
                | (Cardinality::ManyOne, Direction::Fwd)
                | (Cardinality::OneMany, Direction::Bwd)
        )
    }

    /// Is this a single-cardinality label in at least one direction?
    pub fn is_single_any(self) -> bool {
        self != Cardinality::ManyMany
    }

    /// The side whose vertex columns hold the edge (and its properties)
    /// when stored per Section 4.1.2: source for n-1 and 1-1, destination
    /// for 1-n, none for n-n.
    pub fn property_side(self) -> Option<Direction> {
        match self {
            Cardinality::ManyOne | Cardinality::OneOne => Some(Direction::Fwd),
            Cardinality::OneMany => Some(Direction::Bwd),
            Cardinality::ManyMany => None,
        }
    }
}

/// A vertex label and its structured properties.
#[derive(Debug, Clone)]
pub struct VertexLabelDef {
    pub name: String,
    pub properties: Vec<PropertyDef>,
    /// Index of a unique `Int64` property used as the external key (LDBC's
    /// `id`). The storage layer builds a hash index over it so engines can
    /// seek to a vertex in constant time, as every native GDBMS does.
    pub primary_key: Option<usize>,
}

/// An edge label: endpoint labels (structure point (i)), cardinality, and
/// structured properties.
#[derive(Debug, Clone)]
pub struct EdgeLabelDef {
    pub name: String,
    pub src: LabelId,
    pub dst: LabelId,
    pub cardinality: Cardinality,
    pub properties: Vec<PropertyDef>,
}

impl EdgeLabelDef {
    /// The endpoint vertex label reached when traversing in `dir`.
    pub fn nbr_label(&self, dir: Direction) -> LabelId {
        match dir {
            Direction::Fwd => self.dst,
            Direction::Bwd => self.src,
        }
    }

    /// The endpoint vertex label traversal starts from in `dir`.
    pub fn from_label(&self, dir: Direction) -> LabelId {
        match dir {
            Direction::Fwd => self.src,
            Direction::Bwd => self.dst,
        }
    }

    pub fn has_properties(&self) -> bool {
        !self.properties.is_empty()
    }
}

/// The schema of a property graph database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    vertex_labels: Vec<VertexLabelDef>,
    edge_labels: Vec<EdgeLabelDef>,
    vertex_by_name: HashMap<String, LabelId>,
    edge_by_name: HashMap<String, LabelId>,
    /// Graph statistics, populated by the storage builds
    /// ([`crate::ColumnarGraph::build`] / [`crate::RowGraph::build`]) from
    /// the raw data. `None` for a bare schema-only catalog, in which case
    /// the planner falls back to declaration-order joins.
    stats: Option<Stats>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a vertex label; returns its [`LabelId`].
    pub fn add_vertex_label(
        &mut self,
        name: impl Into<String>,
        properties: Vec<PropertyDef>,
    ) -> Result<LabelId> {
        let name = name.into();
        if self.vertex_by_name.contains_key(&name) {
            return Err(Error::Invalid(format!("duplicate vertex label {name}")));
        }
        let id = self.vertex_labels.len() as LabelId;
        self.vertex_by_name.insert(name.clone(), id);
        self.vertex_labels.push(VertexLabelDef { name, properties, primary_key: None });
        Ok(id)
    }

    /// Declare `prop` of `label` as the unique external key.
    pub fn set_primary_key(&mut self, label: LabelId, prop: &str) -> Result<()> {
        let idx = self.vertex_prop_idx(label, prop)?;
        let def = &mut self.vertex_labels[label as usize];
        if def.properties[idx].dtype != DataType::Int64 {
            return Err(Error::Invalid(format!(
                "primary key {prop} of {} must be INT64",
                def.name
            )));
        }
        def.primary_key = Some(idx);
        Ok(())
    }

    /// Register an edge label; returns its [`LabelId`].
    pub fn add_edge_label(
        &mut self,
        name: impl Into<String>,
        src: LabelId,
        dst: LabelId,
        cardinality: Cardinality,
        properties: Vec<PropertyDef>,
    ) -> Result<LabelId> {
        let name = name.into();
        if self.edge_by_name.contains_key(&name) {
            return Err(Error::Invalid(format!("duplicate edge label {name}")));
        }
        if src as usize >= self.vertex_labels.len() || dst as usize >= self.vertex_labels.len() {
            return Err(Error::Invalid(format!("edge label {name} references unknown endpoints")));
        }
        let id = self.edge_labels.len() as LabelId;
        self.edge_by_name.insert(name.clone(), id);
        self.edge_labels.push(EdgeLabelDef { name, src, dst, cardinality, properties });
        Ok(id)
    }

    pub fn vertex_label_count(&self) -> usize {
        self.vertex_labels.len()
    }

    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    pub fn vertex_label(&self, id: LabelId) -> &VertexLabelDef {
        &self.vertex_labels[id as usize]
    }

    pub fn edge_label(&self, id: LabelId) -> &EdgeLabelDef {
        &self.edge_labels[id as usize]
    }

    pub fn vertex_label_id(&self, name: &str) -> Result<LabelId> {
        self.vertex_by_name.get(name).copied().ok_or_else(|| Error::UnknownLabel(name.to_owned()))
    }

    pub fn edge_label_id(&self, name: &str) -> Result<LabelId> {
        self.edge_by_name.get(name).copied().ok_or_else(|| Error::UnknownLabel(name.to_owned()))
    }

    /// Index of `prop` within the vertex label's property list.
    pub fn vertex_prop_idx(&self, label: LabelId, prop: &str) -> Result<usize> {
        let def = &self.vertex_labels[label as usize];
        def.properties.iter().position(|p| p.name == prop).ok_or_else(|| Error::UnknownProperty {
            label: def.name.clone(),
            property: prop.into(),
        })
    }

    /// Index of `prop` within the edge label's property list.
    pub fn edge_prop_idx(&self, label: LabelId, prop: &str) -> Result<usize> {
        let def = &self.edge_labels[label as usize];
        def.properties.iter().position(|p| p.name == prop).ok_or_else(|| Error::UnknownProperty {
            label: def.name.clone(),
            property: prop.into(),
        })
    }

    /// Attach build-time graph statistics (see [`Stats::collect`]).
    pub fn set_stats(&mut self, stats: Stats) {
        self.stats = Some(stats);
    }

    /// Graph statistics, if a storage build attached them.
    pub fn stats(&self) -> Option<&Stats> {
        self.stats.as_ref()
    }

    pub fn vertex_labels(&self) -> &[VertexLabelDef] {
        &self.vertex_labels
    }

    pub fn edge_labels(&self) -> &[EdgeLabelDef] {
        &self.edge_labels
    }

    /// Encode schema + statistics for the on-disk format. The name→ID maps
    /// are rebuilt on decode through the normal registration API, which
    /// also re-validates the schema's internal references.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.vertex_labels.len());
        for v in &self.vertex_labels {
            w.str(&v.name);
            encode_props(w, &v.properties);
            w.opt(v.primary_key, Writer::usize);
        }
        w.usize(self.edge_labels.len());
        for e in &self.edge_labels {
            w.str(&e.name);
            w.u32(e.src as u32);
            w.u32(e.dst as u32);
            w.u8(match e.cardinality {
                Cardinality::OneOne => 0,
                Cardinality::OneMany => 1,
                Cardinality::ManyOne => 2,
                Cardinality::ManyMany => 3,
            });
            encode_props(w, &e.properties);
        }
        w.opt(self.stats.as_ref(), |w, s| s.encode(w));
    }

    /// Decode a [`Catalog::encode`] stream.
    pub fn decode(r: &mut Reader<'_>) -> Result<Catalog> {
        let mut cat = Catalog::new();
        let n_v = r.count()?;
        for _ in 0..n_v {
            let name = r.str()?;
            let properties = decode_props(r)?;
            let pk = r.opt(Reader::usize)?;
            let id = cat
                .add_vertex_label(name, properties)
                .map_err(|e| Error::Storage(format!("bad vertex label: {e}")))?;
            if let Some(idx) = pk {
                let def = &cat.vertex_labels[id as usize];
                let prop_name =
                    def.properties.get(idx).map(|p| p.name.clone()).ok_or_else(|| {
                        Error::Storage(format!("primary key index {idx} out of range"))
                    })?;
                cat.set_primary_key(id, &prop_name)
                    .map_err(|e| Error::Storage(format!("bad primary key: {e}")))?;
            }
        }
        let n_e = r.count()?;
        for _ in 0..n_e {
            let name = r.str()?;
            let src = r.u32()? as LabelId;
            let dst = r.u32()? as LabelId;
            let cardinality = match r.u8()? {
                0 => Cardinality::OneOne,
                1 => Cardinality::OneMany,
                2 => Cardinality::ManyOne,
                3 => Cardinality::ManyMany,
                t => return Err(Error::Storage(format!("invalid cardinality tag {t}"))),
            };
            let properties = decode_props(r)?;
            cat.add_edge_label(name, src, dst, cardinality, properties)
                .map_err(|e| Error::Storage(format!("bad edge label: {e}")))?;
        }
        cat.stats = r.opt(Stats::decode)?;
        Ok(cat)
    }
}

fn encode_props(w: &mut Writer, props: &[PropertyDef]) {
    w.usize(props.len());
    for p in props {
        w.str(&p.name);
        w.dtype(p.dtype);
    }
}

fn decode_props(r: &mut Reader<'_>) -> Result<Vec<PropertyDef>> {
    let n = r.count()?;
    let mut props = Vec::with_capacity(n);
    for _ in 0..n {
        props.push(PropertyDef { name: r.str()?, dtype: r.dtype()? });
    }
    Ok(props)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_single_sides() {
        use Direction::*;
        assert!(Cardinality::OneOne.is_single(Fwd) && Cardinality::OneOne.is_single(Bwd));
        assert!(Cardinality::ManyOne.is_single(Fwd) && !Cardinality::ManyOne.is_single(Bwd));
        assert!(!Cardinality::OneMany.is_single(Fwd) && Cardinality::OneMany.is_single(Bwd));
        assert!(!Cardinality::ManyMany.is_single(Fwd) && !Cardinality::ManyMany.is_single(Bwd));
        assert_eq!(Cardinality::ManyOne.property_side(), Some(Fwd));
        assert_eq!(Cardinality::OneMany.property_side(), Some(Bwd));
        assert_eq!(Cardinality::ManyMany.property_side(), None);
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut c = Catalog::new();
        let person = c
            .add_vertex_label(
                "PERSON",
                vec![
                    PropertyDef::new("id", DataType::Int64),
                    PropertyDef::new("age", DataType::Int64),
                ],
            )
            .unwrap();
        let org =
            c.add_vertex_label("ORG", vec![PropertyDef::new("estd", DataType::Int64)]).unwrap();
        let works = c
            .add_edge_label(
                "WORKAT",
                person,
                org,
                Cardinality::ManyOne,
                vec![PropertyDef::new("doj", DataType::Int64)],
            )
            .unwrap();
        assert_eq!(c.vertex_label_id("PERSON").unwrap(), person);
        assert_eq!(c.edge_label_id("WORKAT").unwrap(), works);
        assert_eq!(c.vertex_prop_idx(person, "age").unwrap(), 1);
        assert!(c.vertex_prop_idx(person, "nope").is_err());
        assert!(c.vertex_label_id("NOPE").is_err());
        assert_eq!(c.edge_label(works).nbr_label(Direction::Fwd), org);
        assert_eq!(c.edge_label(works).nbr_label(Direction::Bwd), person);
        c.set_primary_key(person, "id").unwrap();
        assert_eq!(c.vertex_label(person).primary_key, Some(0));
    }

    #[test]
    fn encode_roundtrips_schema_and_pk() {
        let mut c = Catalog::new();
        let person = c
            .add_vertex_label(
                "PERSON",
                vec![
                    PropertyDef::new("id", DataType::Int64),
                    PropertyDef::new("name", DataType::String),
                ],
            )
            .unwrap();
        let org = c.add_vertex_label("ORG", vec![]).unwrap();
        c.set_primary_key(person, "id").unwrap();
        c.add_edge_label(
            "WORKAT",
            person,
            org,
            Cardinality::ManyOne,
            vec![PropertyDef::new("doj", DataType::Date)],
        )
        .unwrap();
        let mut w = Writer::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let back = Catalog::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.vertex_label_count(), 2);
        assert_eq!(back.vertex_label_id("PERSON").unwrap(), person);
        assert_eq!(back.vertex_label(person).primary_key, Some(0));
        assert_eq!(back.vertex_label(person).properties[1].dtype, DataType::String);
        let e = back.edge_label(back.edge_label_id("WORKAT").unwrap());
        assert_eq!((e.src, e.dst, e.cardinality), (person, org, Cardinality::ManyOne));
        assert_eq!(e.properties[0].dtype, DataType::Date);
        assert!(Catalog::decode(&mut Reader::new(&bytes[..10])).is_err());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut c = Catalog::new();
        c.add_vertex_label("A", vec![]).unwrap();
        assert!(c.add_vertex_label("A", vec![]).is_err());
        assert!(c.add_edge_label("E", 0, 9, Cardinality::ManyMany, vec![]).is_err());
    }

    #[test]
    fn primary_key_must_be_int() {
        let mut c = Catalog::new();
        let l = c.add_vertex_label("A", vec![PropertyDef::new("name", DataType::String)]).unwrap();
        assert!(c.set_primary_key(l, "name").is_err());
    }
}

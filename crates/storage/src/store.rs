//! The mutable graph store: ROADMAP #2 assembled from its parts.
//!
//! [`GraphStore`] owns an immutable read-optimized baseline
//! ([`ColumnarGraph`]), a write-optimized [`DeltaStore`], and (when backed
//! by a directory) the [`crate::wal`] log that makes commits durable. It
//! exposes:
//!
//! * **Epoch-based MVCC snapshots.** Every commit publishes a new
//!   [`GraphSnapshot`] — an `Arc` pairing the baseline with a frozen
//!   [`DeltaSnapshot`] under a monotonically increasing epoch. Queries pin
//!   one snapshot for their whole run, so in-flight morsel-parallel scans
//!   read a consistent graph while writers proceed; nothing a writer does
//!   can ever reach an already-pinned snapshot.
//! * **Single-writer transactions.** [`GraphStore::begin_write`] hands out
//!   a [`WriteTxn`] holding the writer lock and a private clone of the
//!   delta. Ops validate and apply eagerly (so errors surface at the call,
//!   not at commit), and `commit` makes them durable — WAL append +
//!   `fdatasync` — before publishing the new snapshot. `abort` (or drop)
//!   discards the clone; nothing leaks.
//! * **Merge.** [`GraphStore::merge`] folds the delta into a fresh
//!   columnar baseline: the merged graph is exported to a [`RawGraph`] and
//!   rebuilt through the normal build pipeline, which re-blocks zone maps,
//!   recomputes statistics, and (for a directory-backed store) rewrites
//!   the paged graph file atomically before truncating the WAL.
//!
//! [`GraphView`] is the read-side contract: a `Copy` pair of baseline +
//! optional delta that resolves `(baseline ⊎ delta) ∖ tombstones` for
//! scans, adjacency and property reads. The engines consume it directly;
//! when the delta is empty they see `None` and keep their unmodified
//! zero-copy fast paths.
//!
//! ## Crash recovery
//!
//! Reopening a directory replays the WAL through the same
//! [`DeltaStore::apply`] gate writers use: a torn tail (crash mid-commit)
//! is truncated and the transaction is gone — atomicity — while any
//! checksummed-but-undecodable or double-applied record fails the open
//! with [`Error::Storage`]. A crash during merge is repaired on open by
//! the `.tmp`-file protocol described at [`GraphStore::merge`]. A graph
//! file with no `graph.wal` beside it refuses to open: the log's
//! directory entry going missing means acknowledged commits would be
//! silently dropped, which must never look like a clean store. Directory
//! entries (created files, renames) are made durable with an explicit
//! fsync of the store directory at every point the file set changes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use gfcl_common::{Direction, Error, LabelId, Result, Value};

use crate::catalog::Catalog;
use crate::columnar_graph::{AdjIndex, ColumnarGraph};
use crate::config::StorageConfig;
use crate::delta::{DeltaSnapshot, DeltaStore, ResolvedOp, StrExt};
use crate::raw::RawGraph;
use crate::wal::{self, WalWriter};

const GRAPH_FILE: &str = "graph.gfcl";
const WAL_FILE: &str = "graph.wal";
const GRAPH_TMP: &str = "graph.gfcl.tmp";
const WAL_TMP: &str = "graph.wal.tmp";

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{what}: {e}"))
}

/// Make the directory's entries (file creations, renames) durable. File
/// data fsyncs alone do not cover the *names*; without this a power loss
/// can resurrect a pre-rename file set.
fn fsync_dir(dir: &Path) -> Result<()> {
    std::fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync store directory", e))
}

// ---- edge reference tags ---------------------------------------------------
//
// A merged adjacency list carries, per neighbour, a tag naming the physical
// edge so later property reads can find it: baseline CSR position `p` is
// `p << 1`, delta edge index `d` is `d << 1 | 1`. Single-cardinality
// baseline edges use position 0 (their read path ignores it).

/// Tag a baseline CSR position (or 0 for single-cardinality edges).
pub const fn base_edge_ref(pos: u64) -> u64 {
    pos << 1
}

/// Tag a delta edge index.
pub const fn delta_edge_ref(idx: u64) -> u64 {
    (idx << 1) | 1
}

/// Does the tag name a delta edge?
pub const fn is_delta_edge_ref(tag: u64) -> bool {
    tag & 1 == 1
}

/// Strip the tag back to a CSR position / delta index.
pub const fn edge_ref_index(tag: u64) -> u64 {
    tag >> 1
}

/// One consistent read view: the columnar baseline plus (optionally) a
/// frozen delta. `delta == None` means "clean" — every helper degenerates
/// to the plain baseline read and the engines keep their fast paths.
#[derive(Debug, Clone, Copy)]
pub struct GraphView<'g> {
    base: &'g ColumnarGraph,
    delta: Option<&'g DeltaSnapshot>,
}

impl<'g> GraphView<'g> {
    /// A view of the bare baseline (the immutable-graph fast path).
    pub fn clean(base: &'g ColumnarGraph) -> GraphView<'g> {
        GraphView { base, delta: None }
    }

    pub fn new(base: &'g ColumnarGraph, delta: Option<&'g DeltaSnapshot>) -> GraphView<'g> {
        GraphView { base, delta: delta.filter(|d| !d.is_empty()) }
    }

    pub fn base(&self) -> &'g ColumnarGraph {
        self.base
    }

    pub fn delta(&self) -> Option<&'g DeltaSnapshot> {
        self.delta
    }

    pub fn is_clean(&self) -> bool {
        self.delta.is_none()
    }

    // ---- vertices ----------------------------------------------------------

    /// Scan range for `label`: baseline rows plus every delta slot (live
    /// or vacated — scans must still check [`GraphView::vertex_live`] for
    /// rows a tombstone or vacated slot hides).
    pub fn scan_total(&self, label: LabelId) -> u64 {
        let n = self.base.vertex_count(label) as u64;
        match self.delta {
            Some(d) => n + d.delta_slots(label),
            None => n,
        }
    }

    pub fn vertex_live(&self, label: LabelId, off: u64) -> bool {
        let n_base = self.base.vertex_count(label) as u64;
        match self.delta {
            None => off < n_base,
            Some(d) => {
                if off < n_base {
                    !d.vertex_tombed(label, off)
                } else {
                    d.delta_row(label, off - n_base).is_some()
                }
            }
        }
    }

    /// Effective property value of a (live) vertex.
    pub fn vertex_value(&self, label: LabelId, off: u64, prop: usize) -> Value {
        let n_base = self.base.vertex_count(label) as u64;
        if off < n_base {
            if let Some(row) = self.delta.and_then(|d| d.updated_row(label, off)) {
                return row[prop].clone();
            }
            self.base.vertex_prop(label, prop).value(off as usize)
        } else {
            match self.delta.and_then(|d| d.delta_row(label, off - n_base)) {
                Some(row) => row[prop].clone(),
                None => Value::Null,
            }
        }
    }

    pub fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64> {
        if let Some(d) = self.delta {
            if let Some(off) = d.pk_delta(label, key) {
                return Some(off);
            }
            let off = self.base.lookup_pk(label, key)?;
            (!d.vertex_tombed(label, off)).then_some(off)
        } else {
            self.base.lookup_pk(label, key)
        }
    }

    /// Does `label` carry any vertex-side mutation? (`false` ⇒ positional
    /// scans over the baseline are exact.)
    pub fn vertex_label_touched(&self, label: LabelId) -> bool {
        self.delta.is_some_and(|d| d.vertex_label_touched(label))
    }

    /// Do tombstones or row overrides intersect the baseline offset range
    /// `[start, end)`? Clean ranges keep full zone-map pruning.
    pub fn base_range_touched(&self, label: LabelId, start: u64, end: u64) -> bool {
        self.delta.is_some_and(|d| d.base_range_touched(label, start, end))
    }

    pub fn vertex_str_ext(&self, label: LabelId, prop: usize) -> Option<&'g StrExt> {
        self.delta.and_then(|d| d.vertex_str_ext(label, prop))
    }

    // ---- edges -------------------------------------------------------------

    /// Does `(label, dir)` carry any edge mutation at all?
    pub fn edge_label_touched(&self, label: LabelId, dir: Direction) -> bool {
        self.delta.is_some_and(|d| d.edge_label_touched(label, dir))
    }

    /// Is the adjacency list of `from` different from the baseline's?
    pub fn edge_list_dirty(&self, label: LabelId, dir: Direction, from: u64) -> bool {
        self.delta.is_some_and(|d| d.edge_list_dirty(label, dir, from))
    }

    /// Materialize the merged adjacency list of a dirty vertex:
    /// `(neighbours, edge-reference tags)`, baseline survivors in list
    /// order followed by delta edges in insertion order.
    pub fn merged_adj(&self, label: LabelId, dir: Direction, from: u64) -> (Vec<u64>, Vec<u64>) {
        let mut nbrs = Vec::new();
        let mut refs = Vec::new();
        let from_count =
            self.base.vertex_count(self.base.catalog().edge_label(label).from_label(dir)) as u64;
        let tombed = |nbr: u64, occ: u32| {
            let (s, d) = if dir == Direction::Fwd { (from, nbr) } else { (nbr, from) };
            self.delta.is_some_and(|del| del.edge_tombed(label, s, d, occ))
        };
        if from < from_count {
            match self.base.adj(label, dir) {
                AdjIndex::Csr(csr) => {
                    let mut seen: HashMap<u64, u32> = HashMap::new();
                    for (pos, nbr) in csr.iter_list(from) {
                        let occ = seen.entry(nbr).or_insert(0);
                        if !tombed(nbr, *occ) {
                            nbrs.push(nbr);
                            refs.push(base_edge_ref(pos));
                        }
                        *occ += 1;
                    }
                }
                AdjIndex::SingleCard(s) => {
                    if let Some(nbr) = s.nbr(from) {
                        if !tombed(nbr, 0) {
                            nbrs.push(nbr);
                            refs.push(base_edge_ref(0));
                        }
                    }
                }
            }
        }
        if let Some(d) = self.delta {
            for &idx in d.delta_edges_from(label, dir, from) {
                let e = d.delta_edge(label, idx);
                nbrs.push(if dir == Direction::Fwd { e.dst } else { e.src });
                refs.push(delta_edge_ref(idx));
            }
        }
        (nbrs, refs)
    }

    /// The single `(label, dir)` neighbour of `from` — the overlay of the
    /// vertex-column adjacency of single-cardinality directions. Returns
    /// the neighbour and its edge-reference tag.
    pub fn single_nbr(&self, label: LabelId, dir: Direction, from: u64) -> Option<(u64, u64)> {
        if let Some(d) = self.delta {
            if let Some(&idx) = d.delta_edges_from(label, dir, from).first() {
                let e = d.delta_edge(label, idx);
                let nbr = if dir == Direction::Fwd { e.dst } else { e.src };
                return Some((nbr, delta_edge_ref(idx)));
            }
        }
        let from_count =
            self.base.vertex_count(self.base.catalog().edge_label(label).from_label(dir)) as u64;
        if from >= from_count {
            return None;
        }
        match self.base.adj(label, dir) {
            AdjIndex::SingleCard(s) => {
                let nbr = s.nbr(from)?;
                let tombed = {
                    let (s0, d0) = if dir == Direction::Fwd { (from, nbr) } else { (nbr, from) };
                    self.delta.is_some_and(|del| del.edge_tombed(label, s0, d0, 0))
                };
                (!tombed).then_some((nbr, base_edge_ref(0)))
            }
            // Single-cardinality directions are always stored as a vertex
            // column; a CSR here means the caller asked the wrong way.
            AdjIndex::Csr(_) => None,
        }
    }

    /// Read one edge property through an edge-reference tag produced by
    /// [`GraphView::merged_adj`] / [`GraphView::single_nbr`].
    pub fn edge_value(
        &self,
        label: LabelId,
        dir: Direction,
        from: u64,
        tag: u64,
        prop: usize,
    ) -> Result<Value> {
        if is_delta_edge_ref(tag) {
            let d = self
                .delta
                .ok_or_else(|| Error::Storage("delta edge reference on a clean view".into()))?;
            Ok(d.delta_edge(label, edge_ref_index(tag)).props[prop].clone())
        } else {
            let csr_pos = match self.base.adj(label, dir) {
                AdjIndex::Csr(_) => Some(edge_ref_index(tag)),
                AdjIndex::SingleCard(_) => None,
            };
            self.base.read_edge_prop(label, dir, from, csr_pos, prop)
        }
    }

    pub fn edge_str_ext(&self, label: LabelId, dir: Direction, prop: usize) -> Option<&'g StrExt> {
        self.delta.and_then(|d| d.edge_str_ext(label, dir, prop))
    }
}

/// One consistent, immutable view of the whole graph under an MVCC epoch.
/// Queries pin a snapshot (`Arc`) for their entire run; writers publishing
/// newer epochs never disturb it.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    epoch: u64,
    base: Arc<ColumnarGraph>,
    delta: Arc<DeltaSnapshot>,
}

impl GraphSnapshot {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn base(&self) -> &Arc<ColumnarGraph> {
        &self.base
    }

    pub fn delta(&self) -> &Arc<DeltaSnapshot> {
        &self.delta
    }

    pub fn catalog(&self) -> &Catalog {
        self.base.catalog()
    }

    pub fn view(&self) -> GraphView<'_> {
        GraphView::new(&self.base, Some(&self.delta))
    }
}

struct Inner {
    base: Arc<ColumnarGraph>,
    delta: DeltaStore,
    wal: Option<WalWriter>,
}

/// A mutable graph: columnar baseline + delta store + WAL + snapshots.
pub struct GraphStore {
    inner: Mutex<Inner>,
    /// Held for the lifetime of a [`WriteTxn`] (and across merge): the
    /// single-writer lock. Readers never take it.
    writer: Mutex<()>,
    current: RwLock<Arc<GraphSnapshot>>,
    dir: Option<PathBuf>,
    config: StorageConfig,
}

impl GraphStore {
    /// An ephemeral store: mutable, snapshot-isolated, but with no WAL —
    /// nothing survives the process.
    pub fn in_memory(raw: &RawGraph, config: StorageConfig) -> Result<GraphStore> {
        let base = Arc::new(ColumnarGraph::build(raw, config)?);
        Ok(Self::assemble(base, None, None, config, 0))
    }

    /// Create a durable store in `dir`: build the baseline, write the
    /// paged graph file, and start a fresh WAL.
    pub fn create(dir: &Path, raw: &RawGraph, config: StorageConfig) -> Result<GraphStore> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create store dir", e))?;
        let base = Arc::new(ColumnarGraph::build(raw, config)?);
        base.save(dir.join(GRAPH_FILE))?;
        let wal = WalWriter::create(&dir.join(WAL_FILE), wal::baseline_id(&base))?;
        fsync_dir(dir)?;
        Ok(Self::assemble(base, Some(wal), Some(dir.to_path_buf()), config, 0))
    }

    /// Reopen a durable store: open the paged graph file, repair any
    /// crash-interrupted merge, replay the WAL (truncating a torn tail),
    /// and publish the recovered snapshot.
    pub fn open(dir: &Path, config: StorageConfig) -> Result<GraphStore> {
        let graph_path = dir.join(GRAPH_FILE);
        let wal_path = dir.join(WAL_FILE);
        let tmp_graph = dir.join(GRAPH_TMP);
        let tmp_wal = dir.join(WAL_TMP);
        let mut repaired = false;
        if tmp_graph.exists() {
            // A merge died before its commit-point rename: the old graph
            // file is still current and BOTH tmp files are garbage. The
            // tmp WAL in particular must go regardless of what its header
            // claims — adopting an empty tmp log here would replace the
            // real WAL and drop every acknowledged commit.
            std::fs::remove_file(&tmp_graph).map_err(|e| io_err("drop stale merge tmp", e))?;
            if tmp_wal.exists() {
                std::fs::remove_file(&tmp_wal).map_err(|e| io_err("drop stale wal tmp", e))?;
            }
            repaired = true;
        }
        let base = Arc::new(ColumnarGraph::open(&graph_path, config)?);
        let baseline = wal::baseline_id(&base);

        if tmp_wal.exists() {
            if wal::read_baseline(&tmp_wal).is_ok_and(|b| b == baseline) {
                // A merge died between its two renames: the new graph file
                // landed but its fresh WAL did not. Finish the job. (The
                // baseline fingerprint folds in the graph's per-build
                // nonce, so matching proves the tmp log was created for
                // exactly this graph file, never a count-preserving twin.)
                std::fs::rename(&tmp_wal, &wal_path).map_err(|e| io_err("finish merge", e))?;
            } else {
                std::fs::remove_file(&tmp_wal).map_err(|e| io_err("drop stale wal tmp", e))?;
            }
            repaired = true;
        }
        if repaired {
            fsync_dir(dir)?;
        }

        if !wal_path.exists() {
            // Creating a fresh empty log here would silently discard every
            // commit the lost one held and still report a healthy store.
            return Err(Error::Storage(format!(
                "store at {} has a graph file but no graph.wal; a missing log means \
                 acknowledged commits would be silently dropped — refusing to open",
                dir.display()
            )));
        }
        let replayed = wal::replay(&wal_path, baseline)?;
        let (wal_writer, commits) = (WalWriter::open_for_append(&wal_path)?, replayed.commits);

        let mut delta = DeltaStore::new(base.catalog());
        let epoch = commits.len() as u64;
        for (i, commit) in commits.iter().enumerate() {
            for op in commit {
                delta.apply(&base, op).map_err(|e| {
                    Error::Storage(format!("WAL replay: commit {i} does not apply: {e}"))
                })?;
            }
        }
        let store = Self::assemble(base, Some(wal_writer), Some(dir.to_path_buf()), config, epoch);
        lock(&store.inner).delta = delta.clone();
        // Re-publish with the replayed delta (assemble published empty).
        if !delta.is_empty() {
            let inner = lock(&store.inner);
            let snap = Arc::new(GraphSnapshot {
                epoch,
                base: inner.base.clone(),
                delta: Arc::new(delta.freeze(&inner.base)),
            });
            drop(inner);
            *store.current.write().unwrap_or_else(std::sync::PoisonError::into_inner) = snap;
        }
        Ok(store)
    }

    fn assemble(
        base: Arc<ColumnarGraph>,
        wal: Option<WalWriter>,
        dir: Option<PathBuf>,
        config: StorageConfig,
        epoch: u64,
    ) -> GraphStore {
        let delta = DeltaStore::new(base.catalog());
        let snap = Arc::new(GraphSnapshot {
            epoch,
            base: base.clone(),
            delta: Arc::new(delta.freeze(&base)),
        });
        GraphStore {
            inner: Mutex::new(Inner { base, delta, wal }),
            writer: Mutex::new(()),
            current: RwLock::new(snap),
            dir,
            config,
        }
    }

    /// Pin the current snapshot. Cheap (`Arc` clone); hold it for the
    /// duration of a query.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.current.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Number of buffered delta entries — a merge-policy signal.
    pub fn pending_mutations(&self) -> usize {
        lock(&self.inner).delta.mutation_count()
    }

    /// Fault-injection hook for the crash/chaos tiers: the next WAL
    /// append writes `cut` bytes of its record and then fails as if the
    /// disk errored (fsync-failure stand-in). One-shot; no-op on an
    /// in-memory store. Not part of the public API surface.
    #[doc(hidden)]
    pub fn inject_wal_append_failure(&self, cut: usize) {
        if let Some(wal) = lock(&self.inner).wal.as_mut() {
            wal.inject_append_failure(cut);
        }
    }

    /// Begin a write transaction. Blocks while another writer (or a
    /// merge) is active; readers are never blocked.
    pub fn begin_write(&self) -> WriteTxn<'_> {
        let guard = lock(&self.writer);
        let inner = lock(&self.inner);
        let base = inner.base.clone();
        let delta = inner.delta.clone();
        drop(inner);
        WriteTxn { store: self, _guard: guard, base, delta, ops: Vec::new() }
    }

    /// Fold the delta into a fresh columnar baseline: export the merged
    /// graph to a [`RawGraph`], rebuild (re-blocking zone maps and
    /// recomputing statistics), atomically replace the paged graph file,
    /// truncate the WAL, and publish the clean snapshot.
    ///
    /// Crash protocol for the durable case: the new graph is written to
    /// `graph.gfcl.tmp` and its empty WAL to `graph.wal.tmp`; then
    /// `graph.gfcl.tmp → graph.gfcl` (the commit point), then
    /// `graph.wal.tmp → graph.wal` — with the store directory fsynced
    /// after the tmp writes and after each rename, so no durable state
    /// ever pairs a graph file with the wrong log. [`GraphStore::open`]
    /// repairs every window: before the commit-point rename the old state
    /// is intact (both tmp files are dropped, unconditionally), between
    /// the renames the new graph is adopted and its WAL rename is
    /// completed (the tmp WAL's baseline fingerprint — which folds in the
    /// graph's per-build nonce — proves it belongs to the new file).
    pub fn merge(&self) -> Result<u64> {
        let _writer = lock(&self.writer);
        let mut inner = lock(&self.inner);
        if inner.delta.is_empty() {
            return Ok(self.snapshot().epoch());
        }
        let frozen = inner.delta.freeze(&inner.base);
        let raw = merged_raw(&inner.base, &frozen)?;
        let new_base = Arc::new(ColumnarGraph::build(&raw, self.config)?);
        if let Some(dir) = &self.dir {
            let tmp_graph = dir.join(GRAPH_TMP);
            let tmp_wal = dir.join(WAL_TMP);
            new_base.save(&tmp_graph)?;
            drop(WalWriter::create(&tmp_wal, wal::baseline_id(&new_base))?);
            // Both tmp entries must be durable before the commit-point
            // rename: a graph that survives a crash needs its log with it.
            fsync_dir(dir)?;
            std::fs::rename(&tmp_graph, dir.join(GRAPH_FILE))
                .map_err(|e| io_err("swap graph file", e))?;
            fsync_dir(dir)?;
            std::fs::rename(&tmp_wal, dir.join(WAL_FILE))
                .map_err(|e| io_err("swap wal file", e))?;
            fsync_dir(dir)?;
            inner.wal = Some(WalWriter::open_for_append(&dir.join(WAL_FILE))?);
        }
        inner.base = new_base.clone();
        inner.delta = DeltaStore::new(new_base.catalog());
        let clean = Arc::new(inner.delta.freeze(&new_base));
        drop(inner);
        let mut cur = self.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let epoch = cur.epoch + 1;
        *cur = Arc::new(GraphSnapshot { epoch, base: new_base, delta: clean });
        Ok(epoch)
    }
}

/// A single-writer transaction over a [`GraphStore`]. Ops validate and
/// apply to a private delta clone as they are issued; `commit` logs them
/// durably and publishes the next snapshot; `abort` (or drop) discards
/// everything.
pub struct WriteTxn<'s> {
    store: &'s GraphStore,
    _guard: MutexGuard<'s, ()>,
    base: Arc<ColumnarGraph>,
    delta: DeltaStore,
    ops: Vec<ResolvedOp>,
}

impl WriteTxn<'_> {
    pub fn catalog(&self) -> &Catalog {
        self.base.catalog()
    }

    /// Ops buffered so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Effective primary-key lookup inside this transaction (sees its own
    /// uncommitted writes).
    pub fn lookup_pk(&self, label: &str, key: i64) -> Result<Option<u64>> {
        let l = self.base.catalog().vertex_label_id(label)?;
        Ok(self.delta.lookup_pk(&self.base, l, key))
    }

    /// Insert a vertex; unnamed properties are NULL. Returns the new
    /// vertex's global offset.
    pub fn insert_vertex(&mut self, label: &str, props: &[(&str, Value)]) -> Result<u64> {
        let l = self.base.catalog().vertex_label_id(label)?;
        let row = self.vertex_row(l, props)?;
        let off = self.delta.peek_insert_offset(&self.base, l);
        self.run(ResolvedOp::InsertVertex { label: l, row })?;
        Ok(off)
    }

    /// Update named properties of the vertex at `off`, leaving the rest.
    pub fn update_vertex(&mut self, label: &str, off: u64, props: &[(&str, Value)]) -> Result<()> {
        let l = self.base.catalog().vertex_label_id(label)?;
        if !self.delta.vertex_live(&self.base, l, off) {
            return Err(Error::Invalid(format!("update of a dead vertex at offset {off}")));
        }
        let n_props = self.base.catalog().vertex_label(l).properties.len();
        let mut row: Vec<Value> =
            (0..n_props).map(|p| self.delta.vertex_value(&self.base, l, off, p)).collect();
        for (name, v) in props {
            row[self.base.catalog().vertex_prop_idx(l, name)?] = v.clone();
        }
        self.run(ResolvedOp::UpdateVertex { label: l, off, row })
    }

    /// Delete the vertex at `off`, cascading to its incident edges.
    pub fn delete_vertex(&mut self, label: &str, off: u64) -> Result<()> {
        let l = self.base.catalog().vertex_label_id(label)?;
        self.run(ResolvedOp::DeleteVertex { label: l, off })
    }

    /// Insert an edge between two (live) vertex offsets.
    pub fn insert_edge(
        &mut self,
        label: &str,
        src: u64,
        dst: u64,
        props: &[(&str, Value)],
    ) -> Result<()> {
        let l = self.base.catalog().edge_label_id(label)?;
        let row = self.edge_row(l, props)?;
        self.run(ResolvedOp::InsertEdge { label: l, src, dst, props: row })
    }

    /// Delete the first live `label` edge from `src` to `dst` (baseline
    /// occurrences in list order, then delta edges in insertion order).
    pub fn delete_edge(&mut self, label: &str, src: u64, dst: u64) -> Result<()> {
        let l = self.base.catalog().edge_label_id(label)?;
        let target = self.delta.resolve_delete_edge(&self.base, l, src, dst)?;
        self.run(ResolvedOp::DeleteEdge { label: l, target })
    }

    fn vertex_row(&self, label: LabelId, props: &[(&str, Value)]) -> Result<Vec<Value>> {
        let cat = self.base.catalog();
        let mut row = vec![Value::Null; cat.vertex_label(label).properties.len()];
        for (name, v) in props {
            row[cat.vertex_prop_idx(label, name)?] = v.clone();
        }
        Ok(row)
    }

    fn edge_row(&self, label: LabelId, props: &[(&str, Value)]) -> Result<Vec<Value>> {
        let cat = self.base.catalog();
        let mut row = vec![Value::Null; cat.edge_label(label).properties.len()];
        for (name, v) in props {
            row[cat.edge_prop_idx(label, name)?] = v.clone();
        }
        Ok(row)
    }

    fn run(&mut self, op: ResolvedOp) -> Result<()> {
        self.delta.apply(&self.base, &op)?;
        self.ops.push(op);
        Ok(())
    }

    /// Durably commit: append one checksummed WAL record (fsync), install
    /// the delta, and publish the next-epoch snapshot. Returns the new
    /// epoch. On error nothing is installed.
    pub fn commit(self) -> Result<u64> {
        let WriteTxn { store, _guard, base, delta, ops } = self;
        if ops.is_empty() {
            return Ok(store.snapshot().epoch());
        }
        let mut inner = lock(&store.inner);
        if let Some(w) = inner.wal.as_mut() {
            w.append_commit(&ops)?;
        }
        inner.delta = delta;
        let frozen = Arc::new(inner.delta.freeze(&base));
        drop(inner);
        let mut cur = store.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let epoch = cur.epoch + 1;
        *cur = Arc::new(GraphSnapshot { epoch, base, delta: frozen });
        Ok(epoch)
    }

    /// Discard the transaction. (Dropping it does the same.)
    pub fn abort(self) {}
}

/// Export `baseline ⊎ delta ∖ tombstones` to a [`RawGraph`], the input of
/// the normal build pipeline. Deterministic: baseline survivors keep
/// their relative order (offsets ascending, adjacency in list order),
/// delta rows/edges follow in slot/insertion order, and vertex offsets
/// are compacted by the same rule every time.
pub fn merged_raw(base: &ColumnarGraph, delta: &DeltaSnapshot) -> Result<RawGraph> {
    let catalog = base.catalog();
    let mut raw = RawGraph::new(catalog.clone());
    let nv = catalog.vertex_label_count();
    let ne = catalog.edge_label_count();

    // Vertices: survivors first (offset order), then live delta rows
    // (slot order); `remap[label][old global offset] -> new offset`.
    let mut remap: Vec<Vec<Option<u64>>> = Vec::with_capacity(nv);
    for l in 0..nv {
        let label = l as LabelId;
        let def = catalog.vertex_label(label);
        let n_base = base.vertex_count(label) as u64;
        let slots = delta.delta_slots(label);
        let mut map = vec![None; (n_base + slots) as usize];
        let table = &mut raw.vertices[l];
        let mut next = 0u64;
        for off in 0..n_base {
            if delta.vertex_tombed(label, off) {
                continue;
            }
            map[off as usize] = Some(next);
            next += 1;
            let updated = delta.updated_row(label, off);
            for p in 0..def.properties.len() {
                let v = match updated {
                    Some(row) => row[p].clone(),
                    None => base.vertex_prop(label, p).value(off as usize),
                };
                table.props[p].push_value(v)?;
            }
        }
        for slot in 0..slots {
            let Some(row) = delta.delta_row(label, slot) else { continue };
            map[(n_base + slot) as usize] = Some(next);
            next += 1;
            for (col, v) in table.props.iter_mut().zip(row.iter()) {
                col.push_value(v.clone())?;
            }
        }
        table.count = next as usize;
        remap.push(map);
    }

    // Edges: baseline survivors in forward-adjacency order (a stable
    // permutation of the original table order), then delta edges in
    // insertion order.
    for l in 0..ne {
        let label = l as LabelId;
        let def = catalog.edge_label(label);
        let (sl, dl) = (def.src as usize, def.dst as usize);
        let n_from = base.vertex_count(def.src) as u64;
        let push_edge = |raw: &mut RawGraph,
                         ns: u64,
                         nd: u64,
                         mut prop_at: Box<dyn FnMut(usize) -> Result<Value> + '_>|
         -> Result<()> {
            let table = &mut raw.edges[l];
            table.src.push(ns);
            table.dst.push(nd);
            for p in 0..def.properties.len() {
                let v = prop_at(p)?;
                table.props[p].push_value(v)?;
            }
            Ok(())
        };
        match base.adj(label, Direction::Fwd) {
            AdjIndex::Csr(csr) => {
                for v in 0..n_from {
                    let mut seen: HashMap<u64, u32> = HashMap::new();
                    for (pos, nbr) in csr.iter_list(v) {
                        let occ = seen.entry(nbr).or_insert(0);
                        let o = *occ;
                        *occ += 1;
                        if delta.edge_tombed(label, v, nbr, o) {
                            continue;
                        }
                        let (Some(ns), Some(nd)) = (remap[sl][v as usize], remap[dl][nbr as usize])
                        else {
                            continue;
                        };
                        push_edge(
                            &mut raw,
                            ns,
                            nd,
                            Box::new(|p| {
                                base.read_edge_prop(label, Direction::Fwd, v, Some(pos), p)
                            }),
                        )?;
                    }
                }
            }
            AdjIndex::SingleCard(s) => {
                for v in 0..n_from {
                    let Some(nbr) = s.nbr(v) else { continue };
                    if delta.edge_tombed(label, v, nbr, 0) {
                        continue;
                    }
                    let (Some(ns), Some(nd)) = (remap[sl][v as usize], remap[dl][nbr as usize])
                    else {
                        continue;
                    };
                    push_edge(
                        &mut raw,
                        ns,
                        nd,
                        Box::new(|p| base.read_edge_prop(label, Direction::Fwd, v, None, p)),
                    )?;
                }
            }
        }
        for idx in 0..delta.delta_edge_count(label) {
            let e = delta.delta_edge(label, idx);
            if e.deleted {
                continue;
            }
            let (Some(ns), Some(nd)) = (remap[sl][e.src as usize], remap[dl][e.dst as usize])
            else {
                continue;
            };
            push_edge(&mut raw, ns, nd, Box::new(|p| Ok(e.props[p].clone())))?;
        }
    }
    raw.validate()?;
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawGraph;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gfcl_store_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn pk_raw() -> RawGraph {
        let mut raw = RawGraph::example();
        raw.catalog.set_primary_key(0, "age").unwrap();
        raw
    }

    #[test]
    fn write_commit_publishes_new_epoch() {
        let store = GraphStore::in_memory(&pk_raw(), StorageConfig::default()).unwrap();
        let before = store.snapshot();
        assert_eq!(before.epoch(), 0);

        let mut txn = store.begin_write();
        let off = txn
            .insert_vertex(
                "PERSON",
                &[("name", Value::String("zoe".into())), ("age", Value::Int64(31))],
            )
            .unwrap();
        txn.insert_edge("FOLLOWS", 0, off, &[("since", Value::Int64(2024))]).unwrap();
        let epoch = txn.commit().unwrap();
        assert_eq!(epoch, 1);

        // The pinned pre-write snapshot is untouched.
        assert_eq!(before.view().scan_total(0), 4);
        assert!(before.view().lookup_pk(0, 31).is_none());

        // The new snapshot sees everything.
        let after = store.snapshot();
        let v = after.view();
        assert_eq!(v.scan_total(0), 5);
        assert_eq!(v.lookup_pk(0, 31), Some(off));
        assert_eq!(v.vertex_value(0, off, 0), Value::String("zoe".into()));
        let (nbrs, refs) = v.merged_adj(0, Direction::Fwd, 0);
        assert!(nbrs.contains(&off));
        let i = nbrs.iter().position(|&n| n == off).unwrap();
        assert_eq!(v.edge_value(0, Direction::Fwd, 0, refs[i], 0).unwrap(), Value::Int64(2024));
    }

    #[test]
    fn abort_discards_everything() {
        let store = GraphStore::in_memory(&pk_raw(), StorageConfig::default()).unwrap();
        let mut txn = store.begin_write();
        txn.insert_vertex("PERSON", &[("age", Value::Int64(99))]).unwrap();
        txn.delete_vertex("PERSON", 0).unwrap();
        txn.abort();
        let v = store.snapshot();
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.view().scan_total(0), 4);
        assert!(v.view().vertex_live(0, 0));
        // The writer lock was released: a new transaction proceeds.
        let mut txn = store.begin_write();
        txn.insert_vertex("PERSON", &[("age", Value::Int64(99))]).unwrap();
        assert_eq!(txn.commit().unwrap(), 1);
    }

    #[test]
    fn durable_store_recovers_after_reopen() {
        let dir = tmp_dir("reopen");
        {
            let store = GraphStore::create(&dir, &pk_raw(), StorageConfig::default()).unwrap();
            let mut txn = store.begin_write();
            txn.insert_vertex(
                "PERSON",
                &[("name", Value::String("zoe".into())), ("age", Value::Int64(31))],
            )
            .unwrap();
            txn.commit().unwrap();
            let mut txn = store.begin_write();
            txn.delete_vertex("PERSON", 1).unwrap(); // bob, cascading his edges
            txn.commit().unwrap();
        }
        let store = GraphStore::open(&dir, StorageConfig::default()).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 2, "one epoch per replayed commit");
        let v = snap.view();
        assert_eq!(v.scan_total(0), 5);
        assert!(!v.vertex_live(0, 1));
        assert!(v.lookup_pk(0, 31).is_some());
        // bob's FOLLOWS edges died with him.
        let (nbrs, _) = v.merged_adj(0, Direction::Fwd, 0);
        assert!(!nbrs.contains(&1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_folds_delta_and_truncates_wal() {
        let dir = tmp_dir("merge");
        let store = GraphStore::create(&dir, &pk_raw(), StorageConfig::default()).unwrap();
        let mut txn = store.begin_write();
        let zoe = txn
            .insert_vertex(
                "PERSON",
                &[("name", Value::String("zoe".into())), ("age", Value::Int64(31))],
            )
            .unwrap();
        txn.insert_edge("FOLLOWS", zoe, 0, &[("since", Value::Int64(2024))]).unwrap();
        txn.delete_vertex("PERSON", 2).unwrap(); // peter + his edges
        txn.update_vertex("PERSON", 3, &[("name", Value::String("jen".into()))]).unwrap();
        txn.commit().unwrap();

        let pre = store.snapshot();
        let epoch = store.merge().unwrap();
        assert!(epoch > pre.epoch());
        let post = store.snapshot();
        assert!(post.view().is_clean(), "merge publishes an empty delta");
        assert_eq!(post.view().scan_total(0), 4); // 4 - peter + zoe
        assert_eq!(store.pending_mutations(), 0);

        // Reopen: the rewritten graph file + truncated WAL reproduce the
        // merged state exactly.
        drop(store);
        let store = GraphStore::open(&dir, StorageConfig::default()).unwrap();
        let v = store.snapshot();
        let view = v.view();
        assert_eq!(view.scan_total(0), 4);
        let zoe_new = view.lookup_pk(0, 31).expect("zoe survived the merge");
        assert_eq!(view.vertex_value(0, zoe_new, 0), Value::String("zoe".into()));
        let jenny_new = view.lookup_pk(0, 23).expect("jenny survived");
        assert_eq!(view.vertex_value(0, jenny_new, 0), Value::String("jen".into()));
        assert!(view.lookup_pk(0, 17).is_none(), "peter stayed deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_raw_is_deterministic() {
        let raw = pk_raw();
        let base = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
        let mut d = DeltaStore::new(base.catalog());
        for op in [
            ResolvedOp::InsertVertex {
                label: 0,
                row: vec![Value::String("zoe".into()), Value::Int64(31), Value::Null],
            },
            ResolvedOp::DeleteVertex { label: 0, off: 2 },
        ] {
            d.apply(&base, &op).unwrap();
        }
        let snap = d.freeze(&base);
        let a = merged_raw(&base, &snap).unwrap();
        let b = merged_raw(&base, &snap).unwrap();
        // Spot-check structural equality via counts and a rebuild.
        assert_eq!(a.total_vertices(), b.total_vertices());
        assert_eq!(a.total_edges(), b.total_edges());
        let ga = ColumnarGraph::build(&a, StorageConfig::default()).unwrap();
        let gb = ColumnarGraph::build(&b, StorageConfig::default()).unwrap();
        assert_eq!(ga.vertex_count(0), gb.vertex_count(0));
        assert_eq!(ga.edge_count(0), gb.edge_count(0));
    }

    #[test]
    fn count_preserving_merge_crash_keeps_acknowledged_commits() {
        let dir = tmp_dir("cpcrash");
        let store = GraphStore::create(&dir, &pk_raw(), StorageConfig::default()).unwrap();
        // An update-only commit: every per-label count is unchanged, so
        // without the per-build nonce the merged baseline would
        // fingerprint identically to the old one.
        let mut txn = store.begin_write();
        txn.update_vertex("PERSON", 0, &[("name", Value::String("al".into()))]).unwrap();
        txn.commit().unwrap();
        // Hand-simulate the first half of merge(): both tmp files land on
        // disk, then the process dies before the commit-point rename.
        let snap = store.snapshot();
        let raw = merged_raw(snap.base(), snap.delta()).unwrap();
        let merged = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
        merged.save(dir.join(GRAPH_TMP)).unwrap();
        drop(WalWriter::create(&dir.join(WAL_TMP), wal::baseline_id(&merged)).unwrap());
        drop(store);
        // Recovery must keep the old graph AND its real WAL: the update
        // replays; the empty tmp log must never replace graph.wal.
        let store = GraphStore::open(&dir, StorageConfig::default()).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 1, "the acknowledged commit survived");
        assert_eq!(snap.view().vertex_value(0, 0, 0), Value::String("al".into()));
        assert!(!dir.join(GRAPH_TMP).exists());
        assert!(!dir.join(WAL_TMP).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_wal_refuses_to_open() {
        let dir = tmp_dir("nowal");
        let store = GraphStore::create(&dir, &pk_raw(), StorageConfig::default()).unwrap();
        let mut txn = store.begin_write();
        txn.insert_vertex("PERSON", &[("age", Value::Int64(31))]).unwrap();
        txn.commit().unwrap();
        drop(store);
        std::fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let err = match GraphStore::open(&dir, StorageConfig::default()) {
            Ok(_) => panic!("a store without its WAL must not open"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("graph.wal"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_wal_from_before_merge_is_rejected() {
        let dir = tmp_dir("stale");
        let store = GraphStore::create(&dir, &pk_raw(), StorageConfig::default()).unwrap();
        let mut txn = store.begin_write();
        txn.insert_vertex("PERSON", &[("age", Value::Int64(31))]).unwrap();
        txn.commit().unwrap();
        let stale_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        store.merge().unwrap();
        drop(store);
        // Resurrect the pre-merge WAL: its offsets refer to the old
        // baseline, so open must refuse rather than mis-apply them.
        std::fs::write(dir.join(WAL_FILE), &stale_wal).unwrap();
        let err = match GraphStore::open(&dir, StorageConfig::default()) {
            Ok(_) => panic!("stale WAL must not open"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("baseline mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! [`RawGraph`]: the storage-agnostic interchange representation.
//!
//! Data generators produce a `RawGraph`; both [`crate::ColumnarGraph`] and
//! [`crate::RowGraph`] are built from it, guaranteeing that every storage
//! configuration in an experiment holds *exactly* the same logical data.

use gfcl_common::{DataType, Direction, Error, Result, Value};

use crate::catalog::Catalog;

/// A property column of the interchange format: plain `Option<T>` vectors.
#[derive(Debug, Clone)]
pub enum PropData {
    I64(Vec<Option<i64>>),
    F64(Vec<Option<f64>>),
    Bool(Vec<Option<bool>>),
    Str(Vec<Option<String>>),
}

impl PropData {
    /// An empty column of the right shape for `dtype`.
    pub fn new(dtype: DataType) -> PropData {
        match dtype {
            DataType::Int64 | DataType::Date => PropData::I64(Vec::new()),
            DataType::Float64 => PropData::F64(Vec::new()),
            DataType::Bool => PropData::Bool(Vec::new()),
            DataType::String => PropData::Str(Vec::new()),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            PropData::I64(v) => v.len(),
            PropData::F64(v) => v.len(),
            PropData::Bool(v) => v.len(),
            PropData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push_null(&mut self) {
        match self {
            PropData::I64(v) => v.push(None),
            PropData::F64(v) => v.push(None),
            PropData::Bool(v) => v.push(None),
            PropData::Str(v) => v.push(None),
        }
    }

    pub fn push_i64(&mut self, x: i64) {
        match self {
            PropData::I64(v) => v.push(Some(x)),
            _ => panic!("push_i64 on non-integer PropData"),
        }
    }

    pub fn push_f64(&mut self, x: f64) {
        match self {
            PropData::F64(v) => v.push(Some(x)),
            _ => panic!("push_f64 on non-float PropData"),
        }
    }

    pub fn push_bool(&mut self, x: bool) {
        match self {
            PropData::Bool(v) => v.push(Some(x)),
            _ => panic!("push_bool on non-bool PropData"),
        }
    }

    pub fn push_str(&mut self, x: impl Into<String>) {
        match self {
            PropData::Str(v) => v.push(Some(x.into())),
            _ => panic!("push_str on non-string PropData"),
        }
    }

    /// Push a dynamically-typed value.
    pub fn push_value(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (p, Value::Null) => {
                p.push_null();
                Ok(())
            }
            (PropData::I64(d), Value::Int64(x)) | (PropData::I64(d), Value::Date(x)) => {
                d.push(Some(x));
                Ok(())
            }
            (PropData::F64(d), Value::Float64(x)) => {
                d.push(Some(x));
                Ok(())
            }
            (PropData::Bool(d), Value::Bool(x)) => {
                d.push(Some(x));
                Ok(())
            }
            (PropData::Str(d), Value::String(x)) => {
                d.push(Some(x));
                Ok(())
            }
            (p, v) => Err(Error::TypeMismatch {
                expected: format!("{p:?}").chars().take(12).collect(),
                found: v.data_type().map(|t| t.to_string()).unwrap_or_default(),
            }),
        }
    }

    /// Read position `i` as a [`Value`], mapping integers through `dtype`
    /// so `Date` columns yield `Value::Date`.
    pub fn value(&self, i: usize, dtype: DataType) -> Value {
        match self {
            PropData::I64(v) => match v[i] {
                Some(x) if dtype == DataType::Date => Value::Date(x),
                Some(x) => Value::Int64(x),
                None => Value::Null,
            },
            PropData::F64(v) => v[i].map_or(Value::Null, Value::Float64),
            PropData::Bool(v) => v[i].map_or(Value::Null, Value::Bool),
            PropData::Str(v) => v[i].clone().map_or(Value::Null, Value::String),
        }
    }

    /// Reorder values by `perm`: `new[i] = old[perm[i]]`.
    pub fn reorder(&mut self, perm: &[usize]) {
        match self {
            PropData::I64(v) => *v = perm.iter().map(|&i| v[i]).collect(),
            PropData::F64(v) => *v = perm.iter().map(|&i| v[i]).collect(),
            PropData::Bool(v) => *v = perm.iter().map(|&i| v[i]).collect(),
            PropData::Str(v) => *v = perm.iter().map(|&i| v[i].take()).collect(),
        }
    }

    /// Fraction of NULL entries, used by generators to verify sparsity.
    pub fn null_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let nulls = match self {
            PropData::I64(v) => v.iter().filter(|x| x.is_none()).count(),
            PropData::F64(v) => v.iter().filter(|x| x.is_none()).count(),
            PropData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            PropData::Str(v) => v.iter().filter(|x| x.is_none()).count(),
        };
        nulls as f64 / self.len() as f64
    }
}

/// All vertices of one label: a count plus property columns parallel to the
/// catalog's property list.
#[derive(Debug, Clone)]
pub struct VertexTable {
    pub count: usize,
    pub props: Vec<PropData>,
}

/// All edges of one label: endpoint offset pairs plus property columns
/// aligned with the edge order.
#[derive(Debug, Clone, Default)]
pub struct EdgeTable {
    pub src: Vec<u64>,
    pub dst: Vec<u64>,
    pub props: Vec<PropData>,
}

impl EdgeTable {
    pub fn len(&self) -> usize {
        self.src.len()
    }

    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Reorder edges (and their aligned property values) by `perm`:
    /// `new[i] = old[perm[i]]`. Generators use this to emit n-n edges in a
    /// realistic arrival order rather than grouped by source.
    pub fn reorder(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.len());
        self.src = perm.iter().map(|&i| self.src[i]).collect();
        self.dst = perm.iter().map(|&i| self.dst[i]).collect();
        for p in &mut self.props {
            p.reorder(perm);
        }
    }
}

/// A complete logical property graph: catalog + tables.
#[derive(Debug, Clone)]
pub struct RawGraph {
    pub catalog: Catalog,
    pub vertices: Vec<VertexTable>,
    pub edges: Vec<EdgeTable>,
}

impl RawGraph {
    /// An empty graph over `catalog` with zero-row tables.
    pub fn new(catalog: Catalog) -> RawGraph {
        let vertices = catalog
            .vertex_labels()
            .iter()
            .map(|def| VertexTable {
                count: 0,
                props: def.properties.iter().map(|p| PropData::new(p.dtype)).collect(),
            })
            .collect();
        let edges = catalog
            .edge_labels()
            .iter()
            .map(|def| EdgeTable {
                src: Vec::new(),
                dst: Vec::new(),
                props: def.properties.iter().map(|p| PropData::new(p.dtype)).collect(),
            })
            .collect();
        RawGraph { catalog, vertices, edges }
    }

    pub fn vertex_count(&self, label: u16) -> usize {
        self.vertices[label as usize].count
    }

    pub fn edge_count(&self, label: u16) -> usize {
        self.edges[label as usize].len()
    }

    pub fn total_vertices(&self) -> usize {
        self.vertices.iter().map(|t| t.count).sum()
    }

    pub fn total_edges(&self) -> usize {
        self.edges.iter().map(|t| t.len()).sum()
    }

    /// Check structural consistency: property column lengths, endpoint
    /// offsets in range, and declared cardinality constraints.
    pub fn validate(&self) -> Result<()> {
        for (lid, table) in self.vertices.iter().enumerate() {
            let def = self.catalog.vertex_label(lid as u16);
            if table.props.len() != def.properties.len() {
                return Err(Error::Invalid(format!(
                    "{}: {} property columns, schema has {}",
                    def.name,
                    table.props.len(),
                    def.properties.len()
                )));
            }
            for (p, col) in table.props.iter().enumerate() {
                if col.len() != table.count {
                    return Err(Error::Invalid(format!(
                        "{}.{}: {} values for {} vertices",
                        def.name,
                        def.properties[p].name,
                        col.len(),
                        table.count
                    )));
                }
            }
        }
        for (lid, table) in self.edges.iter().enumerate() {
            let def = self.catalog.edge_label(lid as u16);
            let n_src = self.vertices[def.src as usize].count as u64;
            let n_dst = self.vertices[def.dst as usize].count as u64;
            if table.src.len() != table.dst.len() {
                return Err(Error::Invalid(format!("{}: src/dst length mismatch", def.name)));
            }
            for col in &table.props {
                if col.len() != table.len() {
                    return Err(Error::Invalid(format!(
                        "{}: property column length mismatch",
                        def.name
                    )));
                }
            }
            if table.src.iter().any(|&s| s >= n_src) || table.dst.iter().any(|&d| d >= n_dst) {
                return Err(Error::Invalid(format!("{}: endpoint offset out of range", def.name)));
            }
            for dir in [Direction::Fwd, Direction::Bwd] {
                if def.cardinality.is_single(dir) {
                    let endpoints = match dir {
                        Direction::Fwd => &table.src,
                        Direction::Bwd => &table.dst,
                    };
                    let mut seen =
                        vec![false; endpoints.iter().map(|&e| e as usize + 1).max().unwrap_or(0)];
                    for &e in endpoints {
                        if seen[e as usize] {
                            return Err(Error::Invalid(format!(
                                "{}: cardinality violated, vertex {e} has two edges ({dir})",
                                def.name
                            )));
                        }
                        seen[e as usize] = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// The paper's Figure 1 running example: PERSON/ORG vertices with
    /// FOLLOWS (n-n, `since`), STUDYAT (n-1, `doj`) and WORKAT (n-1, `doj`)
    /// edges. Used throughout unit tests, docs and the quickstart example.
    pub fn example() -> RawGraph {
        use crate::catalog::{Cardinality, PropertyDef};
        use gfcl_common::DataType::*;

        let mut cat = Catalog::new();
        let person = cat
            .add_vertex_label(
                "PERSON",
                vec![
                    PropertyDef::new("name", String),
                    PropertyDef::new("age", Int64),
                    PropertyDef::new("gender", String),
                ],
            )
            .unwrap();
        let org = cat
            .add_vertex_label(
                "ORG",
                vec![PropertyDef::new("name", String), PropertyDef::new("estd", Int64)],
            )
            .unwrap();
        let follows = cat
            .add_edge_label(
                "FOLLOWS",
                person,
                person,
                Cardinality::ManyMany,
                vec![PropertyDef::new("since", Int64)],
            )
            .unwrap();
        let studyat = cat
            .add_edge_label(
                "STUDYAT",
                person,
                org,
                Cardinality::ManyOne,
                vec![PropertyDef::new("doj", Int64)],
            )
            .unwrap();
        let workat = cat
            .add_edge_label(
                "WORKAT",
                person,
                org,
                Cardinality::ManyOne,
                vec![PropertyDef::new("doj", Int64)],
            )
            .unwrap();

        let mut g = RawGraph::new(cat);
        // Persons: p0=alice(45,F) p1=bob(54,M) p2=peter(17,M) p3=jenny(23,F)
        {
            let t = &mut g.vertices[person as usize];
            t.count = 4;
            for (name, age, gender) in
                [("alice", 45, "F"), ("bob", 54, "M"), ("peter", 17, "M"), ("jenny", 23, "F")]
            {
                t.props[0].push_str(name);
                t.props[1].push_i64(age);
                t.props[2].push_str(gender);
            }
        }
        // Orgs: o0=UW(1934) o1=UofT(1885)
        {
            let t = &mut g.vertices[org as usize];
            t.count = 2;
            for (name, estd) in [("UW", 1934), ("UofT", 1885)] {
                t.props[0].push_str(name);
                t.props[1].push_i64(estd);
            }
        }
        // FOLLOWS edges with `since`, from the paper's Figure 5.
        {
            let t = &mut g.edges[follows as usize];
            for (s, d, since) in [
                (0u64, 1u64, 2003),
                (1, 2, 2009),
                (0, 3, 1999),
                (1, 3, 2006),
                (2, 3, 2015),
                (3, 1, 2012),
                (2, 1, 1992),
                (2, 0, 2011),
            ] {
                t.src.push(s);
                t.dst.push(d);
                t.props[0].push_i64(since);
            }
        }
        // STUDYAT (n-1): peter->UW(2019), jenny->UofT(2014).
        {
            let t = &mut g.edges[studyat as usize];
            for (s, d, doj) in [(2u64, 0u64, 2019), (3, 1, 2014)] {
                t.src.push(s);
                t.dst.push(d);
                t.props[0].push_i64(doj);
            }
        }
        // WORKAT (n-1): alice->UW(2006), bob->UofT(1980).
        {
            let t = &mut g.edges[workat as usize];
            for (s, d, doj) in [(0u64, 0u64, 2006), (1, 1, 1980)] {
                t.src.push(s);
                t.dst.push(d);
                t.props[0].push_i64(doj);
            }
        }
        g.validate().expect("example graph is consistent");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_graph_validates() {
        let g = RawGraph::example();
        assert_eq!(g.total_vertices(), 6);
        assert_eq!(g.total_edges(), 12);
        assert_eq!(g.vertex_count(0), 4);
        assert_eq!(g.edge_count(0), 8);
    }

    #[test]
    fn validate_catches_cardinality_violation() {
        let mut g = RawGraph::example();
        // STUDYAT is n-1: a second out-edge from peter must fail.
        let t = &mut g.edges[1];
        t.src.push(2);
        t.dst.push(1);
        t.props[0].push_i64(2021);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_range_offsets() {
        let mut g = RawGraph::example();
        g.edges[0].src.push(99);
        g.edges[0].dst.push(0);
        g.edges[0].props[0].push_null();
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_prop_length_mismatch() {
        let mut g = RawGraph::example();
        g.vertices[0].props[1].push_i64(1);
        assert!(g.validate().is_err());
    }

    #[test]
    fn prop_data_typed_pushes() {
        let mut p = PropData::new(DataType::Date);
        p.push_i64(5);
        p.push_null();
        assert_eq!(p.value(0, DataType::Date), Value::Date(5));
        assert_eq!(p.value(1, DataType::Date), Value::Null);
        assert_eq!(p.null_fraction(), 0.5);
        let mut s = PropData::new(DataType::String);
        s.push_value(Value::String("x".into())).unwrap();
        assert!(s.push_value(Value::Int64(1)).is_err());
    }
}

//! Single-indexed edge property pages (Section 4.2, Figure 5).
//!
//! Properties of n-n edges are stored once, in the order of the *indexed*
//! direction's adjacency lists (forward, by convention here). A **page**
//! groups the property lists of `k` consecutive source vertices (k = 128 by
//! default), and each edge's ID carries its **page-level positional
//! offset**. Reads:
//!
//! * *indexed direction*: the properties of a list live in one page, in
//!   list order — sequential, cache-friendly access (Desideratum 1);
//! * *opposite direction*: `page_starts[src / k] + page_offset` locates the
//!   value with one extra array read — constant-time random access, no
//!   scan of the neighbour's list (the problem with a standard edge ID
//!   scheme the paper describes).
//!
//! Small `k` additionally makes deleted page offsets easy to recycle: a gap
//! can be reused by an insertion into *any* of the page's k lists.

use gfcl_columnar::{Column, SegmentSink, SegmentSource};
use gfcl_common::{MemoryUsage, Reader, Result, Writer};

/// The property pages of one edge label (all of its properties share the
/// page geometry).
#[derive(Debug, Clone)]
pub struct PropertyPages {
    k: usize,
    /// `page_starts[g]` = flat index of the first slot of page `g`
    /// (the page covering source vertices `g*k .. (g+1)*k`).
    page_starts: Vec<u64>,
    /// Property columns in flat (page, slot) order — which, for bulk-built
    /// graphs, equals the indexed direction's CSR order.
    props: Vec<Column>,
    /// Largest page size, determining the byte width of stored page-level
    /// positional offsets (`⌈log2(t)/8⌉` bytes — Section 5.1).
    max_page_size: u64,
}

/// The slot assignment produced by filling pages in edge-insertion order:
/// each arriving edge takes the next free slot of its source's page. Within
/// a page the `k` lists interleave (the paper: "properties of the same list
/// does not have to be consecutive... stored in close-by memory locations"),
/// which is what makes small `k` cache-friendly and the page-offset scheme
/// update-friendly (any of the k lists can recycle a freed slot).
#[derive(Debug, Clone)]
pub struct PageAssignment {
    /// Flat index of the first slot of each page (+1 sentinel).
    pub page_starts: Vec<u64>,
    /// Page-level positional offset assigned to each input edge.
    pub slot_of_input: Vec<u64>,
    /// Flat storage index of each input edge (`page_start + slot`).
    pub flat_of_input: Vec<u64>,
    pub max_page_size: u64,
}

/// Assign page slots for `src_of_edge` in insertion order.
pub fn assign_insertion_order(k: usize, n_src: usize, src_of_edge: &[u64]) -> PageAssignment {
    assert!(k > 0, "page size k must be positive");
    let n_pages = n_src.div_ceil(k).max(1);
    // Page sizes, then prefix-summed starts.
    let mut sizes = vec![0u64; n_pages];
    for &s in src_of_edge {
        sizes[s as usize / k] += 1;
    }
    let mut page_starts = Vec::with_capacity(n_pages + 1);
    let mut acc = 0u64;
    for &sz in &sizes {
        page_starts.push(acc);
        acc += sz;
    }
    page_starts.push(acc);
    let max_page_size = sizes.iter().copied().max().unwrap_or(0);
    // Slots in arrival order.
    let mut next = vec![0u64; n_pages];
    let mut slot_of_input = Vec::with_capacity(src_of_edge.len());
    let mut flat_of_input = Vec::with_capacity(src_of_edge.len());
    for &s in src_of_edge {
        let page = s as usize / k;
        let slot = next[page];
        next[page] += 1;
        slot_of_input.push(slot);
        flat_of_input.push(page_starts[page] + slot);
    }
    PageAssignment { page_starts, slot_of_input, flat_of_input, max_page_size }
}

impl PropertyPages {
    /// Assemble pages from an insertion-order [`PageAssignment`] and the
    /// property columns already scattered to flat (page, slot) positions.
    pub fn from_assignment(
        k: usize,
        assignment: &PageAssignment,
        props: Vec<Column>,
    ) -> PropertyPages {
        PropertyPages {
            k,
            page_starts: assignment.page_starts.clone(),
            props,
            max_page_size: assignment.max_page_size,
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n_pages(&self) -> usize {
        self.page_starts.len() - 1
    }

    pub fn n_props(&self) -> usize {
        self.props.len()
    }

    pub fn prop(&self, j: usize) -> &Column {
        &self.props[j]
    }

    /// Page-level positional offset of the edge stored at flat position
    /// `flat` in the list of source vertex `src` (build-time helper: the
    /// offsets are what get written into adjacency lists).
    #[inline]
    pub fn page_offset_of(&self, src: u64, flat: u64) -> u64 {
        flat - self.page_starts[src as usize / self.k]
    }

    /// Flat index of the edge `(src, page_offset)` — the constant-time
    /// opposite-direction access path.
    #[inline]
    pub fn flat_index(&self, src: u64, page_offset: u64) -> u64 {
        self.page_starts[src as usize / self.k] + page_offset
    }

    /// Largest page-level positional offset that can occur (for leading-0
    /// suppression of the stored offsets).
    pub fn max_page_offset(&self) -> u64 {
        self.max_page_size.saturating_sub(1)
    }

    /// Heap bytes held right now (`page_starts` stays resident — it is
    /// the random-access path — while property values may be paged).
    pub fn resident_bytes(&self) -> usize {
        self.page_starts.memory_bytes()
            + self.props.iter().map(Column::resident_data_bytes).sum::<usize>()
            + self.props.iter().map(Column::null_overhead_bytes).sum::<usize>()
    }

    /// Bytes living on disk, faulted through the buffer pool.
    pub fn pageable_bytes(&self) -> usize {
        self.props.iter().map(Column::pageable_bytes).sum()
    }

    /// Encode for the on-disk format: geometry inline, property values as
    /// page segments.
    pub fn encode(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        w.usize(self.k);
        w.u64(self.max_page_size);
        w.usize(self.page_starts.len());
        for &s in &self.page_starts {
            w.u64(s);
        }
        w.usize(self.props.len());
        for p in &self.props {
            p.encode(w, sink);
        }
    }

    /// Decode a [`PropertyPages::encode`] stream.
    pub fn decode(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<PropertyPages> {
        let k = r.usize()?;
        let max_page_size = r.u64()?;
        let n_starts = r.count()?;
        let mut page_starts = Vec::with_capacity(n_starts);
        for _ in 0..n_starts {
            page_starts.push(r.u64()?);
        }
        if k == 0 || page_starts.is_empty() {
            return Err(gfcl_common::Error::Storage("empty property-page geometry".into()));
        }
        let n = r.count()?;
        let mut props = Vec::with_capacity(n);
        for _ in 0..n {
            props.push(Column::decode(r, src)?);
        }
        Ok(PropertyPages { k, page_starts, props, max_page_size })
    }
}

impl MemoryUsage for PropertyPages {
    fn memory_bytes(&self) -> usize {
        self.page_starts.memory_bytes() + self.props.iter().map(Column::memory_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_columnar::NullKind;
    use gfcl_common::DataType;

    /// 5 source vertices, k = 2 (pages: {v0,v1}, {v2,v3}, {v4}), edges
    /// arriving in interleaved order as in Figure 5.
    fn sample() -> (PageAssignment, PropertyPages, Vec<u64>) {
        let src = vec![0u64, 2, 0, 3, 2, 4, 2, 4];
        let a = assign_insertion_order(2, 5, &src);
        // Property of input edge i is i * 10, scattered to flat positions.
        let mut flat_vals: Vec<Option<i64>> = vec![None; src.len()];
        for (i, &f) in a.flat_of_input.iter().enumerate() {
            flat_vals[f as usize] = Some(i as i64 * 10);
        }
        let col = Column::from_i64(DataType::Int64, &flat_vals, NullKind::Uncompressed);
        let pp = PropertyPages::from_assignment(2, &a, vec![col]);
        (a, pp, src)
    }

    #[test]
    fn page_geometry() {
        let (a, pp, _) = sample();
        assert_eq!(pp.n_pages(), 3);
        assert_eq!(pp.k(), 2);
        // Page 0 holds v0's 2 edges, page 1 holds v2+v3's 4, page 2 v4's 2.
        assert_eq!(a.page_starts, vec![0, 2, 6, 8]);
        assert_eq!(a.max_page_size, 4);
        assert_eq!(pp.max_page_offset(), 3);
    }

    #[test]
    fn slots_interleave_within_a_page() {
        let (a, _, src) = sample();
        // v2 and v3 share page 1; arrival order interleaves their slots.
        let page1_slots: Vec<(u64, u64)> = src
            .iter()
            .zip(&a.slot_of_input)
            .filter(|(&s, _)| s == 2 || s == 3)
            .map(|(&s, &slot)| (s, slot))
            .collect();
        assert_eq!(page1_slots, vec![(2, 0), (3, 1), (2, 2), (2, 3)]);
    }

    #[test]
    fn flat_index_is_constant_time_inverse() {
        let (a, pp, src) = sample();
        for (i, (&s, &slot)) in src.iter().zip(&a.slot_of_input).enumerate() {
            assert_eq!(pp.flat_index(s, slot), a.flat_of_input[i]);
            // Property read through (src, page-offset) recovers the value.
            assert_eq!(pp.prop(0).get_i64(pp.flat_index(s, slot) as usize), Some(i as i64 * 10));
        }
    }

    #[test]
    fn page_offsets_fit_suppressed_width() {
        let (a, pp, _) = sample();
        for &slot in &a.slot_of_input {
            assert!(slot <= pp.max_page_offset());
        }
    }

    #[test]
    fn single_giant_page_is_edge_column_like() {
        let src = vec![0u64, 1, 2, 0];
        let a = assign_insertion_order(1024, 3, &src);
        assert_eq!(a.page_starts, vec![0, 4]);
        // One page: slots are exactly the insertion order.
        assert_eq!(a.slot_of_input, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_label() {
        let a = assign_insertion_order(128, 0, &[]);
        let pp = PropertyPages::from_assignment(128, &a, vec![]);
        assert_eq!(pp.n_pages(), 1);
        assert_eq!(pp.max_page_offset(), 0);
    }
}

//! Seeded fault injection for the post-open storage read path.
//!
//! [`FailingStore`] wraps the storage file *below* the buffer pool's
//! checksum verification (the [`PageFile`] seam), so injected corruption
//! is detected exactly the way real corruption would be: a flipped bit
//! fails the page checksum, the pool retries, and either the retry heals
//! it (one-shot flips, transient read errors) or the fault propagates as
//! a clean per-query [`Error::Storage`]
//! (sticky flips, permanent read errors).
//!
//! Everything is driven by one seeded xorshift generator, so a failing
//! chaos run reproduces from its printed seed. Rates are expressed in
//! parts-per-million of page reads; [`FaultConfig::from_env`] reads them
//! from the `GFCL_FAULT_*` environment variables (validated — garbage is
//! an error naming the variable), and
//! [`ColumnarGraph::open`](crate::ColumnarGraph::open) arms the injector
//! whenever any of them is set.

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::sync::Mutex;

use gfcl_common::{Error, Result};

use crate::pager::PageFile;

/// Injection rates and the seed of one chaos configuration. All rates are
/// per million page reads; a zero-rate dimension never fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Transient read errors: the read fails now (and possibly once
    /// more), then the page heals — always within the pool's retry
    /// budget, so a transient fault alone never surfaces to the query.
    pub transient_ppm: u32,
    /// Permanent read errors: the page fails every read from now on.
    pub permanent_ppm: u32,
    /// One-shot bit flips: this read returns corrupted bytes, the next
    /// read (the pool's retry) serves the real data.
    pub flip_ppm: u32,
    /// Sticky bit flips: the same bit is corrupted on every subsequent
    /// read — retries cannot heal it and the checksum error propagates.
    pub sticky_flip_ppm: u32,
}

impl FaultConfig {
    /// No injection on any dimension.
    pub fn disabled() -> FaultConfig {
        FaultConfig { seed: 0, transient_ppm: 0, permanent_ppm: 0, flip_ppm: 0, sticky_flip_ppm: 0 }
    }

    pub fn is_disabled(&self) -> bool {
        self.transient_ppm == 0
            && self.permanent_ppm == 0
            && self.flip_ppm == 0
            && self.sticky_flip_ppm == 0
    }

    /// Read a fault configuration from `GFCL_FAULT_SEED`,
    /// `GFCL_FAULT_TRANSIENT_PPM`, `GFCL_FAULT_PERMANENT_PPM`,
    /// `GFCL_FAULT_FLIP_PPM` and `GFCL_FAULT_STICKY_FLIP_PPM`. `None`
    /// when every variable is unset or empty; a set-but-unparsable value
    /// is an error naming the variable (a typo must not silently run
    /// without injection).
    pub fn from_env() -> Result<Option<FaultConfig>> {
        fn var(name: &str) -> Result<Option<u64>> {
            match std::env::var(name) {
                Err(_) => Ok(None),
                Ok(s) if s.trim().is_empty() => Ok(None),
                Ok(s) => s.trim().parse::<u64>().map(Some).map_err(|_| {
                    Error::Invalid(format!("{name} must be a non-negative integer, got {s:?}"))
                }),
            }
        }
        let seed = var("GFCL_FAULT_SEED")?;
        let transient = var("GFCL_FAULT_TRANSIENT_PPM")?;
        let permanent = var("GFCL_FAULT_PERMANENT_PPM")?;
        let flip = var("GFCL_FAULT_FLIP_PPM")?;
        let sticky = var("GFCL_FAULT_STICKY_FLIP_PPM")?;
        if seed.is_none()
            && transient.is_none()
            && permanent.is_none()
            && flip.is_none()
            && sticky.is_none()
        {
            return Ok(None);
        }
        Ok(Some(FaultConfig {
            seed: seed.unwrap_or(0),
            transient_ppm: transient.unwrap_or(0) as u32,
            permanent_ppm: permanent.unwrap_or(0) as u32,
            flip_ppm: flip.unwrap_or(0) as u32,
            sticky_flip_ppm: sticky.unwrap_or(0) as u32,
        }))
    }
}

struct ChaosState {
    rng: u64,
    /// Page offsets that fail every read from now on.
    permanent: HashSet<u64>,
    /// Page offset → remaining forced transient failures.
    transient_left: HashMap<u64, u32>,
    /// Page offset → (byte index, xor mask) applied on every read.
    sticky: HashMap<u64, (usize, u8)>,
    reads: u64,
    injected: u64,
}

/// A [`PageFile`] that injects seeded read faults in front of a real
/// file. Sits below the pool's checksum check, so flipped bits are always
/// *detected* corruption, never silently served data.
pub struct FailingStore {
    inner: File,
    cfg: FaultConfig,
    state: Mutex<ChaosState>,
}

impl FailingStore {
    pub fn new(inner: File, cfg: FaultConfig) -> FailingStore {
        FailingStore {
            inner,
            cfg,
            state: Mutex::new(ChaosState {
                // xorshift needs a non-zero state; fold the seed into a
                // fixed odd constant so seed 0 is valid and distinct.
                rng: cfg.seed ^ 0x9e37_79b9_7f4a_7c15,
                permanent: HashSet::new(),
                transient_left: HashMap::new(),
                sticky: HashMap::new(),
                reads: 0,
                injected: 0,
            }),
        }
    }

    /// Total reads attempted and faults injected so far (tests assert the
    /// injector actually fired).
    pub fn injection_stats(&self) -> (u64, u64) {
        let st = lock(&self.state);
        (st.reads, st.injected)
    }
}

fn lock(m: &Mutex<ChaosState>) -> std::sync::MutexGuard<'_, ChaosState> {
    // lint: allow(chaos harness state; a poisoned lock means the test
    // already panicked and re-panicking is correct)
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Roll one per-million event.
fn roll(state: &mut u64, ppm: u32) -> bool {
    ppm > 0 && xorshift(state) % 1_000_000 < u64::from(ppm)
}

fn injected_err(kind: &str, offset: u64) -> std::io::Error {
    std::io::Error::other(format!("injected {kind} read error at byte offset {offset}"))
}

impl PageFile for FailingStore {
    fn read_page_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        let mut st = lock(&self.state);
        st.reads += 1;
        if st.permanent.contains(&offset) {
            st.injected += 1;
            return Err(injected_err("permanent", offset));
        }
        if let Some(n) = st.transient_left.get_mut(&offset) {
            if *n > 0 {
                *n -= 1;
                st.injected += 1;
                return Err(injected_err("transient", offset));
            }
            st.transient_left.remove(&offset);
            // The healing read is served clean with no further rolls, so a
            // transient fault alone is guaranteed to resolve within the
            // pool's retry budget regardless of the configured rate.
            return self.inner.read_page_at(buf, offset);
        }
        if roll(&mut st.rng, self.cfg.permanent_ppm) {
            st.permanent.insert(offset);
            st.injected += 1;
            return Err(injected_err("permanent", offset));
        }
        if roll(&mut st.rng, self.cfg.transient_ppm) {
            // Fail this read and possibly the next one — never more, so a
            // transient fault always heals within the pool's 3 attempts.
            let extra = (xorshift(&mut st.rng) % 2) as u32;
            st.transient_left.insert(offset, extra);
            st.injected += 1;
            return Err(injected_err("transient", offset));
        }
        self.inner.read_page_at(buf, offset)?;
        if let Some(&(idx, mask)) = st.sticky.get(&offset) {
            st.injected += 1;
            buf[idx % buf.len()] ^= mask;
            return Ok(());
        }
        if roll(&mut st.rng, self.cfg.sticky_flip_ppm) {
            let idx = (xorshift(&mut st.rng) as usize) % buf.len();
            let mask = 1u8 << (xorshift(&mut st.rng) % 8);
            st.sticky.insert(offset, (idx, mask));
            st.injected += 1;
            buf[idx] ^= mask;
            return Ok(());
        }
        if roll(&mut st.rng, self.cfg.flip_ppm) {
            let idx = (xorshift(&mut st.rng) as usize) % buf.len();
            st.injected += 1;
            buf[idx] ^= 1u8 << (xorshift(&mut st.rng) % 8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch_file(name: &str, pages: usize) -> (File, std::path::PathBuf) {
        let path =
            std::env::temp_dir().join(format!("gfcl_chaos_{}_{name}.bin", std::process::id()));
        let mut f = File::create(&path).unwrap();
        for i in 0..pages {
            f.write_all(&vec![i as u8; gfcl_columnar::PAGE_SIZE]).unwrap();
        }
        drop(f);
        (File::open(&path).unwrap(), path)
    }

    #[test]
    fn disabled_config_is_transparent() {
        let (f, path) = scratch_file("off", 2);
        let store = FailingStore::new(f, FaultConfig::disabled());
        let mut buf = vec![0u8; gfcl_columnar::PAGE_SIZE];
        store.read_page_at(&mut buf, gfcl_columnar::PAGE_SIZE as u64).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        assert_eq!(store.injection_stats(), (1, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permanent_faults_stick_transients_heal() {
        let (f, path) = scratch_file("stick", 1);
        let cfg = FaultConfig { seed: 7, transient_ppm: 1_000_000, ..FaultConfig::disabled() };
        let store = FailingStore::new(f, cfg);
        let mut buf = vec![0u8; gfcl_columnar::PAGE_SIZE];
        // 100% transient rate: every fresh read trips, but the forced
        // window is ≤ 2 failures, after which... the next roll trips
        // again. Heal is only observable with the real retry pattern, so
        // assert the bounded-window shape instead: within 3 consecutive
        // attempts at least the injected error is transient, and with the
        // rate at 0 the page reads clean.
        assert!(store.read_page_at(&mut buf, 0).is_err());
        let cfg0 = FaultConfig { seed: 7, ..FaultConfig::disabled() };
        let (f2, path2) = scratch_file("stick2", 1);
        let clean = FailingStore::new(f2, cfg0);
        assert!(clean.read_page_at(&mut buf, 0).is_ok());

        let (f3, path3) = scratch_file("stick3", 1);
        let perm = FailingStore::new(f3, FaultConfig { seed: 3, permanent_ppm: 1_000_000, ..cfg0 });
        for _ in 0..4 {
            assert!(perm.read_page_at(&mut buf, 0).is_err(), "permanent faults never heal");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
        std::fs::remove_file(&path3).ok();
    }

    #[test]
    fn sticky_flips_corrupt_the_same_bit_every_read() {
        let (f, path) = scratch_file("flip", 1);
        let cfg = FaultConfig { seed: 11, sticky_flip_ppm: 1_000_000, ..FaultConfig::disabled() };
        let store = FailingStore::new(f, cfg);
        let mut a = vec![0u8; gfcl_columnar::PAGE_SIZE];
        let mut b = vec![0u8; gfcl_columnar::PAGE_SIZE];
        store.read_page_at(&mut a, 0).unwrap();
        store.read_page_at(&mut b, 0).unwrap();
        assert_eq!(a, b, "the same corruption is reproduced on every read");
        assert_ne!(a, vec![0u8; gfcl_columnar::PAGE_SIZE], "some bit actually flipped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let run = |seed: u64| -> Vec<bool> {
            let (f, path) = scratch_file(&format!("det{seed}"), 1);
            let cfg = FaultConfig { seed, transient_ppm: 300_000, ..FaultConfig::disabled() };
            let store = FailingStore::new(f, cfg);
            let mut buf = vec![0u8; gfcl_columnar::PAGE_SIZE];
            let outcomes = (0..64).map(|_| store.read_page_at(&mut buf, 0).is_ok()).collect();
            std::fs::remove_file(&path).ok();
            outcomes
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds diverge");
    }

    #[test]
    fn env_parsing_rejects_garbage_naming_the_variable() {
        // Parallel-test safe: exercise the parser through a scoped
        // variable name is impossible with std env, so validate the
        // number-parsing helper shape through from_env only when the
        // variables are unset (the common case in the test environment).
        if std::env::var_os("GFCL_FAULT_SEED").is_none()
            && std::env::var_os("GFCL_FAULT_TRANSIENT_PPM").is_none()
            && std::env::var_os("GFCL_FAULT_PERMANENT_PPM").is_none()
            && std::env::var_os("GFCL_FAULT_FLIP_PPM").is_none()
            && std::env::var_os("GFCL_FAULT_STICKY_FLIP_PPM").is_none()
        {
            assert_eq!(FaultConfig::from_env().unwrap(), None);
        }
    }
}

//! Per-label storage of n-n edge properties: the Section 4.2 design space.

use gfcl_columnar::Column;
use gfcl_common::MemoryUsage;

use crate::pages::PropertyPages;

/// How one edge label's properties are physically stored.
#[derive(Debug, Clone)]
pub enum EdgePropStore {
    /// The label has no properties — nothing is stored at all (one of the
    /// big wins over the row store, which keeps a pointer per edge).
    None,
    /// Single-indexed property pages (the paper's design).
    Pages(PropertyPages),
    /// Flat columns indexed by a randomly-assigned dense edge ID
    /// (baseline "edge columns").
    Columns { props: Vec<Column> },
    /// Properties duplicated in forward and backward list order
    /// (baseline "double-indexed property CSRs").
    DoubleIndexed { fwd: Vec<Column>, bwd: Vec<Column> },
    /// Single-cardinality label: properties live in the
    /// [`crate::single_card::SingleCardAdj`] vertex columns; their bytes are
    /// accounted there.
    InVertexColumns,
}

impl EdgePropStore {
    pub fn n_props(&self) -> usize {
        match self {
            EdgePropStore::None | EdgePropStore::InVertexColumns => 0,
            EdgePropStore::Pages(p) => p.n_props(),
            EdgePropStore::Columns { props } => props.len(),
            EdgePropStore::DoubleIndexed { fwd, .. } => fwd.len(),
        }
    }
}

impl MemoryUsage for EdgePropStore {
    fn memory_bytes(&self) -> usize {
        match self {
            EdgePropStore::None | EdgePropStore::InVertexColumns => 0,
            EdgePropStore::Pages(p) => p.memory_bytes(),
            EdgePropStore::Columns { props } => props.iter().map(Column::memory_bytes).sum(),
            EdgePropStore::DoubleIndexed { fwd, bwd } => {
                fwd.iter().chain(bwd).map(Column::memory_bytes).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_columnar::NullKind;
    use gfcl_common::DataType;

    #[test]
    fn double_indexed_costs_twice_columns() {
        let values: Vec<Option<i64>> = (0..1000).map(Some).collect();
        let col = Column::from_i64(DataType::Int64, &values, NullKind::None);
        let single = EdgePropStore::Columns { props: vec![col.clone()] };
        let double = EdgePropStore::DoubleIndexed { fwd: vec![col.clone()], bwd: vec![col] };
        assert_eq!(double.memory_bytes(), 2 * single.memory_bytes());
        assert_eq!(single.n_props(), 1);
        assert_eq!(double.n_props(), 1);
    }

    #[test]
    fn none_is_free() {
        assert_eq!(EdgePropStore::None.memory_bytes(), 0);
        assert_eq!(EdgePropStore::InVertexColumns.memory_bytes(), 0);
    }
}

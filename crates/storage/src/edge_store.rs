//! Per-label storage of n-n edge properties: the Section 4.2 design space.

use gfcl_columnar::{Column, SegmentSink, SegmentSource};
use gfcl_common::{Error, MemoryUsage, Reader, Result, Writer};

use crate::pages::PropertyPages;

/// How one edge label's properties are physically stored.
#[derive(Debug, Clone)]
pub enum EdgePropStore {
    /// The label has no properties — nothing is stored at all (one of the
    /// big wins over the row store, which keeps a pointer per edge).
    None,
    /// Single-indexed property pages (the paper's design).
    Pages(PropertyPages),
    /// Flat columns indexed by a randomly-assigned dense edge ID
    /// (baseline "edge columns").
    Columns { props: Vec<Column> },
    /// Properties duplicated in forward and backward list order
    /// (baseline "double-indexed property CSRs").
    DoubleIndexed { fwd: Vec<Column>, bwd: Vec<Column> },
    /// Single-cardinality label: properties live in the
    /// [`crate::single_card::SingleCardAdj`] vertex columns; their bytes are
    /// accounted there.
    InVertexColumns,
}

impl EdgePropStore {
    pub fn n_props(&self) -> usize {
        match self {
            EdgePropStore::None | EdgePropStore::InVertexColumns => 0,
            EdgePropStore::Pages(p) => p.n_props(),
            EdgePropStore::Columns { props } => props.len(),
            EdgePropStore::DoubleIndexed { fwd, .. } => fwd.len(),
        }
    }

    /// Heap bytes held right now.
    pub fn resident_bytes(&self) -> usize {
        match self {
            EdgePropStore::None | EdgePropStore::InVertexColumns => 0,
            EdgePropStore::Pages(p) => p.resident_bytes(),
            EdgePropStore::Columns { props } => column_resident(props),
            EdgePropStore::DoubleIndexed { fwd, bwd } => {
                column_resident(fwd) + column_resident(bwd)
            }
        }
    }

    /// Bytes living on disk, faulted through the buffer pool.
    pub fn pageable_bytes(&self) -> usize {
        match self {
            EdgePropStore::None | EdgePropStore::InVertexColumns => 0,
            EdgePropStore::Pages(p) => p.pageable_bytes(),
            EdgePropStore::Columns { props } => column_pageable(props),
            EdgePropStore::DoubleIndexed { fwd, bwd } => {
                column_pageable(fwd) + column_pageable(bwd)
            }
        }
    }

    /// Encode for the on-disk format.
    pub fn encode(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        match self {
            EdgePropStore::None => w.u8(0),
            EdgePropStore::Pages(p) => {
                w.u8(1);
                p.encode(w, sink);
            }
            EdgePropStore::Columns { props } => {
                w.u8(2);
                encode_columns(w, sink, props);
            }
            EdgePropStore::DoubleIndexed { fwd, bwd } => {
                w.u8(3);
                encode_columns(w, sink, fwd);
                encode_columns(w, sink, bwd);
            }
            EdgePropStore::InVertexColumns => w.u8(4),
        }
    }

    /// Decode an [`EdgePropStore::encode`] stream.
    pub fn decode(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<EdgePropStore> {
        Ok(match r.u8()? {
            0 => EdgePropStore::None,
            1 => EdgePropStore::Pages(PropertyPages::decode(r, src)?),
            2 => EdgePropStore::Columns { props: decode_columns(r, src)? },
            3 => EdgePropStore::DoubleIndexed {
                fwd: decode_columns(r, src)?,
                bwd: decode_columns(r, src)?,
            },
            4 => EdgePropStore::InVertexColumns,
            t => return Err(Error::Storage(format!("invalid edge-prop-store tag {t}"))),
        })
    }
}

fn column_resident(props: &[Column]) -> usize {
    props.iter().map(|c| c.resident_data_bytes() + c.null_overhead_bytes()).sum()
}

fn column_pageable(props: &[Column]) -> usize {
    props.iter().map(Column::pageable_bytes).sum()
}

fn encode_columns(w: &mut Writer, sink: &mut dyn SegmentSink, props: &[Column]) {
    w.usize(props.len());
    for p in props {
        p.encode(w, sink);
    }
}

fn decode_columns(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<Vec<Column>> {
    let n = r.count()?;
    let mut props = Vec::with_capacity(n);
    for _ in 0..n {
        props.push(Column::decode(r, src)?);
    }
    Ok(props)
}

impl MemoryUsage for EdgePropStore {
    fn memory_bytes(&self) -> usize {
        match self {
            EdgePropStore::None | EdgePropStore::InVertexColumns => 0,
            EdgePropStore::Pages(p) => p.memory_bytes(),
            EdgePropStore::Columns { props } => props.iter().map(Column::memory_bytes).sum(),
            EdgePropStore::DoubleIndexed { fwd, bwd } => {
                fwd.iter().chain(bwd).map(Column::memory_bytes).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_columnar::NullKind;
    use gfcl_common::DataType;

    #[test]
    fn double_indexed_costs_twice_columns() {
        let values: Vec<Option<i64>> = (0..1000).map(Some).collect();
        let col = Column::from_i64(DataType::Int64, &values, NullKind::None);
        let single = EdgePropStore::Columns { props: vec![col.clone()] };
        let double = EdgePropStore::DoubleIndexed { fwd: vec![col.clone()], bwd: vec![col] };
        assert_eq!(double.memory_bytes(), 2 * single.memory_bytes());
        assert_eq!(single.n_props(), 1);
        assert_eq!(double.n_props(), 1);
    }

    #[test]
    fn none_is_free() {
        assert_eq!(EdgePropStore::None.memory_bytes(), 0);
        assert_eq!(EdgePropStore::InVertexColumns.memory_bytes(), 0);
    }
}

//! Storage-layer environment knobs: `GFCL_BUFFER_MB` pool sizing and the
//! `GFCL_FAULT_*` injection rates follow the validated pattern — a
//! set-but-unparsable value is a clean error naming the variable, never a
//! silent fallback. Each variable gets exactly one `#[test]` because
//! tests in one binary run concurrently and share the process
//! environment.

use gfcl_storage::{BufferPool, ColumnarGraph, FaultConfig, RawGraph, StorageConfig};

fn saved_example(name: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("gfcl_envknob_{}_{name}.gfcl", std::process::id()));
    let g = ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap();
    g.save(&path).unwrap();
    path
}

#[test]
fn gfcl_buffer_mb_is_validated() {
    let path = saved_example("buffer");

    for garbage in ["big", "-1", "2.5"] {
        std::env::set_var("GFCL_BUFFER_MB", garbage);
        let cap = BufferPool::capacity_from_env(8);
        let opened = ColumnarGraph::open(&path, StorageConfig::default());
        std::env::remove_var("GFCL_BUFFER_MB");
        let err = cap.expect_err("garbage sizing must not run the default geometry");
        assert!(err.to_string().contains("GFCL_BUFFER_MB"), "{err}");
        assert!(opened.is_err(), "open must refuse a graph under a garbage pool size");
    }

    // A valid value is honored (floor one page); unset uses the default.
    std::env::set_var("GFCL_BUFFER_MB", "1");
    let cap = BufferPool::capacity_from_env(8).unwrap();
    let opened = ColumnarGraph::open(&path, StorageConfig::default());
    std::env::remove_var("GFCL_BUFFER_MB");
    assert_eq!(cap, (1024 * 1024) / gfcl_columnar::PAGE_SIZE);
    assert!(opened.is_ok());
    assert_eq!(BufferPool::capacity_from_env(8).unwrap(), 8);

    std::fs::remove_file(&path).ok();
}

#[test]
fn gfcl_fault_rates_are_validated() {
    let path = saved_example("faults");

    std::env::set_var("GFCL_FAULT_TRANSIENT_PPM", "sometimes");
    let cfg = FaultConfig::from_env();
    let opened = ColumnarGraph::open(&path, StorageConfig::default());
    std::env::remove_var("GFCL_FAULT_TRANSIENT_PPM");
    let err = cfg.expect_err("garbage rates must not silently disable injection");
    assert!(err.to_string().contains("GFCL_FAULT_TRANSIENT_PPM"), "{err}");
    assert!(opened.is_err(), "open must refuse to run with a mistyped fault rate");

    // A set seed alone arms the injector with all rates zero — openable
    // and by definition transparent.
    std::env::set_var("GFCL_FAULT_SEED", "42");
    let cfg = FaultConfig::from_env().unwrap().expect("a set seed arms the injector");
    let opened = ColumnarGraph::open(&path, StorageConfig::default());
    std::env::remove_var("GFCL_FAULT_SEED");
    assert_eq!(cfg.seed, 42);
    assert!(cfg.is_disabled());
    assert!(opened.is_ok());

    std::fs::remove_file(&path).ok();
}

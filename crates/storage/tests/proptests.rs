//! Property-based tests of the storage invariants (DESIGN.md §5,
//! invariants 4, 5 and 8).

use gfcl_columnar::NullKind;
use gfcl_storage::mutation::MutableAdjacency;
use gfcl_storage::pages::assign_insertion_order;
use gfcl_storage::{Csr, CsrOptions};
use proptest::prelude::*;

/// Random edge lists over a small vertex set.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u64, u64)>)> {
    (2usize..40)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n as u64, 0..n as u64), 0..200)))
}

proptest! {
    /// Invariant 4: flattening all CSR adjacency lists reproduces the exact
    /// multiset of input edges, under every empty-list layout, and the
    /// forward and backward CSRs are transposes of each other.
    #[test]
    fn csr_roundtrips_and_transposes((n, edges) in edges_strategy()) {
        let src: Vec<u64> = edges.iter().map(|e| e.0).collect();
        let dst: Vec<u64> = edges.iter().map(|e| e.1).collect();
        for compress in [None, Some(NullKind::jacobson_default()), Some(NullKind::Sparse),
                         Some(NullKind::Uncompressed)] {
            let opts = CsrOptions { zero_suppress: true, compress_empty: compress };
            let (fwd, _) = Csr::build(n, &src, &dst, opts);
            let (bwd, _) = Csr::build(n, &dst, &src, opts);

            let mut expected: Vec<(u64, u64)> = edges.clone();
            expected.sort_unstable();
            let mut from_fwd = Vec::new();
            for v in 0..n as u64 {
                for (_, nb) in fwd.iter_list(v) {
                    from_fwd.push((v, nb));
                }
            }
            from_fwd.sort_unstable();
            prop_assert_eq!(&from_fwd, &expected);

            let mut from_bwd = Vec::new();
            for v in 0..n as u64 {
                for (_, nb) in bwd.iter_list(v) {
                    from_bwd.push((nb, v)); // transpose back
                }
            }
            from_bwd.sort_unstable();
            prop_assert_eq!(&from_bwd, &expected);

            // Degrees consistent with the multiset.
            for v in 0..n as u64 {
                prop_assert_eq!(fwd.degree(v), src.iter().filter(|&&s| s == v).count());
                prop_assert_eq!(bwd.degree(v), dst.iter().filter(|&&d| d == v).count());
            }
        }
    }

    /// Invariant 5 (page geometry): insertion-order page assignment is a
    /// bijection between edges and flat slots; flat = page_start + slot;
    /// slots never exceed the max page offset; pages partition the range.
    #[test]
    fn page_assignment_is_consistent((n, edges) in edges_strategy(), k in 1usize..16) {
        let src: Vec<u64> = edges.iter().map(|e| e.0).collect();
        let a = assign_insertion_order(k, n, &src);
        // Bijection: all flat indices distinct and dense in 0..m.
        let mut flats = a.flat_of_input.clone();
        flats.sort_unstable();
        let expected: Vec<u64> = (0..src.len() as u64).collect();
        prop_assert_eq!(flats, expected);
        // flat = page_start[page] + slot, slot bounded by max page size.
        for (i, &s) in src.iter().enumerate() {
            let page = s as usize / k;
            prop_assert_eq!(
                a.flat_of_input[i],
                a.page_starts[page] + a.slot_of_input[i]
            );
            prop_assert!(a.slot_of_input[i] < a.max_page_size.max(1));
            // Within the page's range.
            prop_assert!(a.flat_of_input[i] < a.page_starts[page + 1]);
        }
        // Page starts are monotone.
        prop_assert!(a.page_starts.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Invariant 8: a mutable adjacency subjected to random inserts and
    /// deletes matches a naive model, and gaps never exceed deletions.
    #[test]
    fn mutable_adjacency_matches_model(
        ops in proptest::collection::vec((0u64..8, 0u64..20, any::<bool>()), 0..120),
        k in 1usize..8,
    ) {
        let mut adj = MutableAdjacency::new(8, k);
        let mut model: Vec<Vec<(u64, i64)>> = vec![Vec::new(); 8];
        let mut deletions = 0usize;
        for (i, (src, dst, is_insert)) in ops.into_iter().enumerate() {
            if is_insert {
                // Model disallows parallel edges for determinism.
                if !model[src as usize].iter().any(|&(d, _)| d == dst) {
                    adj.insert_edge(src, dst, i as i64);
                    model[src as usize].push((dst, i as i64));
                }
            } else {
                let in_model = model[src as usize].iter().position(|&(d, _)| d == dst);
                let deleted = adj.delete_edge(src, dst);
                prop_assert_eq!(deleted, in_model.is_some());
                if let Some(p) = in_model {
                    model[src as usize].swap_remove(p);
                    deletions += 1;
                }
            }
        }
        for v in 0..8u64 {
            let mut got = adj.list(v);
            got.sort_unstable();
            let mut want = model[v as usize].clone();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {}", v);
        }
        prop_assert!(adj.total_gaps() <= deletions);
    }
}

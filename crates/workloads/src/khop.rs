//! k-hop microbenchmark query generators (Sections 8.3–8.6, Figure 12).
//!
//! The microbenchmarks enumerate all k-paths over one edge label with a
//! predicate pattern from the paper:
//!
//! * **1-hop**: the edge's property is compared with a constant;
//! * **k-hop**: each edge's property must exceed the previous edge's
//!   (Section 8.3), or only the *last* edge carries a constant predicate
//!   (Section 8.6 FILTER), or there is no predicate and the query counts
//!   (Section 8.6 COUNT(*)).
//!
//! `backward = true` builds the Section 8.3 backward plan: matching starts
//! from the rightmost variable and traverses backward adjacency lists,
//! turning sequential property-page reads into random ones.

use gfcl_core::query::{col, gt, lit, lt, PatternQuery, QueryBuilder};

/// Predicate/return shape of a k-hop query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KhopMode {
    /// `RETURN COUNT(*)`, no predicate (Section 8.6 COUNT rows).
    CountStar,
    /// Predicate `last_edge.prop > c` then count (Section 8.6 FILTER rows).
    LastEdgeGt(i64),
    /// `e1.prop > c` on 1-hop; `e_i.prop > e_{i-1}.prop` on k-hop
    /// (Section 8.3 rows).
    Chain(i64),
}

/// Build a k-hop query over `(node_label, edge_label)`.
pub fn khop(
    node_label: &str,
    edge_label: &str,
    edge_prop: &str,
    hops: usize,
    mode: KhopMode,
    backward: bool,
) -> PatternQuery {
    khop_limited(node_label, edge_label, edge_prop, hops, mode, backward, None)
}

/// [`khop`] with an optional bound on the start vertex's `id` property —
/// the paper's device for keeping the WIKI 2-hop tractable ("we put a
/// predicate on the source and destination nodes").
#[allow(clippy::too_many_arguments)]
pub fn khop_limited(
    node_label: &str,
    edge_label: &str,
    edge_prop: &str,
    hops: usize,
    mode: KhopMode,
    backward: bool,
    start_id_below: Option<i64>,
) -> PatternQuery {
    assert!(hops >= 1);
    let vars: Vec<String> = (0..=hops).map(|i| format!("v{i}")).collect();
    let mut b = QueryBuilder::default();
    for v in &vars {
        b = b.node(v, node_label);
    }
    for i in 0..hops {
        b = b.edge(&format!("e{}", i + 1), edge_label, &vars[i], &vars[i + 1]);
    }
    if let Some(limit) = start_id_below {
        // Bound BOTH endpoints (the paper: "we put a predicate on the
        // source and destination nodes") so forward and backward plans
        // evaluate the same query and both start from a limited scan.
        b = b.filter(lt(col(&vars[0], "id"), lit(limit)));
        b = b.filter(lt(col(&vars[hops], "id"), lit(limit)));
    }
    match mode {
        KhopMode::CountStar => {}
        KhopMode::LastEdgeGt(c) => {
            b = b.filter(gt(col(&format!("e{hops}"), edge_prop), lit(c)));
        }
        KhopMode::Chain(c) => {
            // `e1 > c` and `e_i > e_{i-1}` imply `e_i > c` for every i; the
            // implied per-edge predicates are emitted explicitly so that
            // both forward and backward plans can prune at their first
            // extension (the planner applies each conjunct as soon as its
            // inputs are bound).
            for i in 1..=hops {
                b = b.filter(gt(col(&format!("e{i}"), edge_prop), lit(c)));
            }
            for i in 2..=hops {
                b = b.filter(gt(
                    col(&format!("e{i}"), edge_prop),
                    col(&format!("e{}", i - 1), edge_prop),
                ));
            }
        }
    }
    if backward {
        b = b.start_at(&vars[hops]).edge_order((0..hops).rev().collect());
    }
    b.returns_count().build()
}

/// k-hop with no edge property (property-less labels, e.g. `replyOfComment`
/// for the Table 4 single-cardinality experiment).
pub fn khop_propless(node_label: &str, edge_label: &str, hops: usize) -> PatternQuery {
    khop_propless_dir(node_label, edge_label, hops, false)
}

/// Directional variant of [`khop_propless`].
pub fn khop_propless_dir(
    node_label: &str,
    edge_label: &str,
    hops: usize,
    backward: bool,
) -> PatternQuery {
    let vars: Vec<String> = (0..=hops).map(|i| format!("v{i}")).collect();
    let mut b = QueryBuilder::default();
    for v in &vars {
        b = b.node(v, node_label);
    }
    for i in 0..hops {
        b = b.edge("", edge_label, &vars[i], &vars[i + 1]);
    }
    if backward {
        b = b.start_at(&vars[hops]).edge_order((0..hops).rev().collect());
    }
    b.returns_count().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_core::plan::{plan, PlanStep};
    use gfcl_core::Engine;
    use gfcl_core::GfClEngine;
    use gfcl_datagen::PowerLawParams;
    use gfcl_storage::{ColumnarGraph, StorageConfig};
    use std::sync::Arc;

    fn engine() -> GfClEngine {
        let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
            nodes: 200,
            avg_degree: 5.0,
            exponent: 1.8,
            seed: 3,
        });
        GfClEngine::new(Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap()))
    }

    #[test]
    fn forward_and_backward_plans_agree() {
        let e = engine();
        for hops in 1..=2 {
            for mode in [
                KhopMode::CountStar,
                KhopMode::LastEdgeGt(1_350_000_000),
                KhopMode::Chain(1_310_000_000),
            ] {
                let f = e.execute(&khop("NODE", "LINK", "ts", hops, mode, false)).unwrap();
                let b = e.execute(&khop("NODE", "LINK", "ts", hops, mode, true)).unwrap();
                assert_eq!(f, b, "hops={hops} mode={mode:?}");
            }
        }
    }

    #[test]
    fn backward_plan_traverses_backward() {
        let e = engine();
        let q = khop("NODE", "LINK", "ts", 2, KhopMode::CountStar, true);
        let p = plan(&q, e.catalog()).unwrap();
        let dirs: Vec<gfcl_common::Direction> = p
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Extend { dir, .. } => Some(*dir),
                _ => None,
            })
            .collect();
        assert!(dirs.iter().all(|d| *d == gfcl_common::Direction::Bwd));
    }

    #[test]
    fn chain_mode_compares_consecutive_edges() {
        let q = khop("NODE", "LINK", "ts", 3, KhopMode::Chain(5), false);
        // 3 per-edge constant bounds (one implied per edge) + 2 chain links.
        assert_eq!(q.predicates.len(), 5);
        assert_eq!(q.edges.len(), 3);
        assert_eq!(q.nodes.len(), 4);
    }
}

//! Crash-torture writer: applies the deterministic `crashkit` commit
//! stream to a durable [`GraphStore`] at the given directory, printing
//! `committed <k>` after each durable commit. The `crash_recovery` test
//! SIGKILLs this process at randomized points and then checks that
//! `GraphStore::open` recovers exactly a commit-boundary prefix.
//!
//! Usage: `crash_writer <dir> <commits>`
//!
//! [`GraphStore`]: gfcl_storage::GraphStore

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args.next().expect("usage: crash_writer <dir> <commits>");
    let commits: u64 = args
        .next()
        .expect("usage: crash_writer <dir> <commits>")
        .parse()
        .expect("commits must be an integer");
    if let Err(e) = gfcl_workloads::crashkit::run_writer(std::path::Path::new(&dir), commits) {
        eprintln!("crash_writer failed: {e}");
        std::process::exit(1);
    }
}

//! Benchmark workloads (Section 8): the LDBC-like IS/IC suites, the 33
//! JOB-like star-join queries, the k-hop microbenchmark generators used by
//! Tables 3–5 and Figure 12, and the GA grouped-aggregation/top-k suite.

pub mod corpus;
pub mod crashkit;
pub mod grouped;
pub mod job;
pub mod khop;
pub mod ldbc;

pub use grouped::ga_queries;
pub use khop::{khop, khop_propless, khop_propless_dir, KhopMode};
pub use ldbc::LdbcParams;

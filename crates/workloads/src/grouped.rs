//! LDBC-style grouped-aggregation and top-k workload queries (the GA
//! suite), in the spirit of the group-heavy analytics of LDBC BI and
//! *Graph Analytics using the Vertica Relational Database* — the workload
//! class the engine could not answer before the grouped sinks existed.
//!
//! Every query is a `GROUP BY` / top-k / `DISTINCT` shape over the
//! `gfcl-datagen` social schema, exercising each sink: multiplicity-folded
//! grouped `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, `COUNT(DISTINCT)`, grouped
//! top-k (`ORDER BY` + `LIMIT`), and `DISTINCT` projections.

use gfcl_core::query::{col, eq, lit, Agg, PatternQuery, SortDir};

use crate::LdbcParams;

/// The grouped-aggregation suite. Returns `(name, query)` pairs.
// One `out.push` block per named query keeps each query's comment
// attached to it; `vec![]` would lose that structure.
#[allow(clippy::vec_init_then_push)]
pub fn ga_queries(p: &LdbcParams) -> Vec<(String, PatternQuery)> {
    let mut out = Vec::new();

    // GA01: per-friend message counts and first message date for one
    // person's friends (grouped IC02 shape; aggregates fold the unflat
    // comment lists without flattening them).
    out.push((
        "GA01".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("f", "Person")
            .node("c", "Comment")
            .edge("k", "knows", "p", "f")
            .edge("hc", "hasCreator", "c", "f")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .group_by(&[("f", "id")])
            .returns_agg(vec![
                Agg::count_star(),
                Agg::min("c", "creationDate"),
                Agg::max("c", "creationDate"),
            ])
            .build(),
    ));

    // GA02: the 5 most-used tags across all posts (grouped top-k).
    out.push((
        "GA02".into(),
        PatternQuery::builder()
            .node("pst", "Post")
            .node("t", "Tag")
            .edge("ht", "postHasTag", "pst", "t")
            .group_by(&[("t", "name")])
            .returns_agg(vec![Agg::count_star()])
            .order_by(1, SortDir::Desc)
            .limit(5)
            .build(),
    ));

    // GA03: comment volume and length statistics per author gender.
    out.push((
        "GA03".into(),
        PatternQuery::builder()
            .node("c", "Comment")
            .node("a", "Person")
            .edge("hc", "hasCreator", "c", "a")
            .group_by(&[("a", "gender")])
            .returns_agg(vec![
                Agg::count_star(),
                Agg::avg("c", "length"),
                Agg::max("c", "length"),
                Agg::count_distinct("c", "browserUsed"),
            ])
            .build(),
    ));

    // GA04: largest employers — headcount and earliest hire year per
    // organisation, top 5.
    out.push((
        "GA04".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("o", "Organisation")
            .edge("w", "workAt", "p", "o")
            .group_by(&[("o", "name")])
            .returns_agg(vec![Agg::count_star(), Agg::min("w", "year")])
            .order_by(1, SortDir::Desc)
            .limit(5)
            .build(),
    ));

    // GA05: friends-of-friends count per person, top 10 — the grouped
    // 2-hop: the far end stays an unflat adjacency view and is counted
    // purely by multiplicity.
    out.push((
        "GA05".into(),
        PatternQuery::builder()
            .node("a", "Person")
            .node("b", "Person")
            .node("c", "Person")
            .edge("k1", "knows", "a", "b")
            .edge("k2", "knows", "b", "c")
            .group_by(&[("a", "id")])
            .returns_agg(vec![Agg::count_star()])
            .order_by(1, SortDir::Desc)
            .limit(10)
            .build(),
    ));

    // GA06: the distinct browsers seen on persons (DISTINCT projection).
    out.push((
        "GA06".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .returns(&[("p", "browserUsed")])
            .distinct()
            .build(),
    ));

    // GA07: whole-result multi-aggregate over posts — count, average
    // length, languages in use.
    out.push((
        "GA07".into(),
        PatternQuery::builder()
            .node("pst", "Post")
            .returns_agg(vec![
                Agg::count_star(),
                Agg::avg("pst", "length"),
                Agg::sum("pst", "length"),
                Agg::count_distinct("pst", "language"),
            ])
            .build(),
    ));

    // GA08: the 10 longest comments (top-k projection, no grouping).
    out.push((
        "GA08".into(),
        PatternQuery::builder()
            .node("c", "Comment")
            .returns(&[("c", "length"), ("c", "id")])
            .order_by(0, SortDir::Desc)
            .limit(10)
            .build(),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_core::plan::{plan, PlanReturn};
    use gfcl_datagen::SocialParams;

    #[test]
    fn ga_queries_plan_against_generated_schema() {
        let raw = gfcl_datagen::generate_social(SocialParams::scale(50));
        let params = LdbcParams::for_scale(50);
        let queries = ga_queries(&params);
        assert_eq!(queries.len(), 8);
        for (name, q) in &queries {
            let p = plan(q, &raw.catalog).unwrap_or_else(|e| panic!("{name} failed to plan: {e}"));
            if name.as_str() < "GA06" {
                assert!(matches!(p.ret, PlanReturn::GroupBy { .. }), "{name} is grouped");
            }
        }
    }
}

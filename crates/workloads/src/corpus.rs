//! The text-query corpus: every workload query as a `.gql` file under
//! `corpus/`, paired with its hand-built [`QueryBuilder`] twin from the
//! suite modules.
//!
//! The corpus is the frontend's conformance surface: the harness in
//! `tests/text_corpus.rs` parses and binds each text, asserts the bound
//! [`PatternQuery`] is **structurally equal** to the twin, and then runs
//! both through every engine — so `MATCH ...` text and builder programs
//! are provably the same query, not merely similar ones.
//!
//! LDBC and GA texts are parameterized with `$person_id`-style
//! placeholders, substituted from [`LdbcParams`] before parsing (the `$`
//! sigil is not lexable, so a missed placeholder fails loudly).
//!
//! [`QueryBuilder`]: gfcl_core::query::QueryBuilder

use gfcl_core::query::PatternQuery;

use crate::ldbc::{self, LdbcParams};
use crate::{ga_queries, job, khop, KhopMode};

/// One corpus entry: a named query in both of its forms.
pub struct CorpusEntry {
    /// Suite-local query name (`IS01`, `17a`, `khop-2-chain-bwd=true`, ...).
    pub name: String,
    /// The text form, placeholders already substituted.
    pub text: String,
    /// The builder twin the text must bind to, structurally.
    pub twin: PatternQuery,
}

/// Embed a suite's `.gql` files as `(name, raw text)` pairs.
macro_rules! gql {
    ($suite:literal : $($name:literal),+ $(,)?) => {
        &[$(($name, include_str!(concat!("../corpus/", $suite, "/", $name, ".gql")))),+]
    };
}

const LDBC_GQL: &[(&str, &str)] = gql!("ldbc":
    "IS01", "IS02", "IS03", "IS04", "IS05", "IS06", "IS07",
    "IC01", "IC02", "IC03", "IC04", "IC05", "IC06", "IC07", "IC08", "IC09",
    "IC11", "IC12",
);

const JOB_GQL: &[(&str, &str)] = gql!("job":
    "1a", "2a", "3a", "4a", "5a", "6a", "7a", "8a", "9a", "10a", "11a",
    "12a", "13a", "14a", "15a", "16a", "17a", "18a", "19a", "20a", "21a",
    "22a", "23a", "24a", "25a", "26a", "27a", "28a", "29a", "30a", "31a",
    "32a", "33a",
);

const GA_GQL: &[(&str, &str)] =
    gql!("ga": "GA01", "GA02", "GA03", "GA04", "GA05", "GA06", "GA07", "GA08");

const KHOP_GQL: &[(&str, &str)] = gql!("khop":
    "khop-1-count-bwd=false", "khop-1-count-bwd=true",
    "khop-1-filter-bwd=false", "khop-1-filter-bwd=true",
    "khop-1-chain-bwd=false", "khop-1-chain-bwd=true",
    "khop-2-count-bwd=false", "khop-2-count-bwd=true",
    "khop-2-filter-bwd=false", "khop-2-filter-bwd=true",
    "khop-2-chain-bwd=false", "khop-2-chain-bwd=true",
    "khop-3-count-bwd=false", "khop-3-count-bwd=true",
    "khop-3-filter-bwd=false", "khop-3-filter-bwd=true",
    "khop-3-chain-bwd=false", "khop-3-chain-bwd=true",
);

/// Substitute `$param` placeholders from `p`. Every query constant the
/// suites parameterize has a placeholder here; anything left over fails
/// at parse time because `$` is not a lexable character.
fn substitute(text: &str, p: &LdbcParams) -> String {
    text.replace("$person_id", &p.person_id.to_string())
        .replace("$comment_id", &p.comment_id.to_string())
        .replace("$max_date", &p.max_date.to_string())
        .replace("$window_lo", &p.window_lo.to_string())
        .replace("$window_hi", &p.window_hi.to_string())
        .replace("$member_since", &p.member_since.to_string())
}

/// Pair named twins with their `.gql` files; both directions must cover
/// the same name set.
fn pair(
    files: &[(&str, &str)],
    twins: Vec<(String, PatternQuery)>,
    subst: impl Fn(&str) -> String,
) -> Vec<CorpusEntry> {
    assert_eq!(files.len(), twins.len(), "corpus files and twin queries diverge");
    twins
        .into_iter()
        .map(|(name, twin)| {
            let raw = files
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("no .gql corpus file for query {name}"))
                .1;
            CorpusEntry { name, text: subst(raw), twin }
        })
        .collect()
}

/// The 18 LDBC IS/IC queries (social schema).
pub fn ldbc_corpus(p: &LdbcParams) -> Vec<CorpusEntry> {
    pair(LDBC_GQL, ldbc::all_queries(p), |t| substitute(t, p))
}

/// The 33 JOB queries (movie schema).
pub fn job_corpus() -> Vec<CorpusEntry> {
    pair(JOB_GQL, job::all_queries(), str::to_owned)
}

/// The 8 GA grouped-aggregation/top-k queries (social schema).
pub fn ga_corpus(p: &LdbcParams) -> Vec<CorpusEntry> {
    pair(GA_GQL, ga_queries(p), |t| substitute(t, p))
}

/// The 18 k-hop microbenchmark queries (power-law schema): hops 1..=3 ×
/// {count, filter, chain} × {forward, backward}, matching the EXPLAIN
/// snapshot suite.
pub fn khop_corpus() -> Vec<CorpusEntry> {
    let mut twins = Vec::new();
    for hops in 1..=3 {
        for (mode_name, mode) in [
            ("count", KhopMode::CountStar),
            ("filter", KhopMode::LastEdgeGt(1_400_000_000)),
            ("chain", KhopMode::Chain(1_350_000_000)),
        ] {
            for backward in [false, true] {
                twins.push((
                    format!("khop-{hops}-{mode_name}-bwd={backward}"),
                    khop("NODE", "LINK", "ts", hops, mode, backward),
                ));
            }
        }
    }
    pair(KHOP_GQL, twins, str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_workload_query() {
        let p = LdbcParams::for_scale(80);
        assert_eq!(ldbc_corpus(&p).len(), 18);
        assert_eq!(job_corpus().len(), 33);
        assert_eq!(ga_corpus(&p).len(), 8);
        assert_eq!(khop_corpus().len(), 18);
    }

    #[test]
    fn substitution_leaves_no_placeholders() {
        let p = LdbcParams::for_scale(80);
        for e in ldbc_corpus(&p).iter().chain(ga_corpus(&p).iter()) {
            assert!(!e.text.contains('$'), "{}: unsubstituted placeholder", e.name);
        }
    }
}

//! LDBC SNB Interactive Short (IS) and Complex (IC) read queries, as
//! modified by the paper (Appendix B), translated to [`PatternQuery`]
//! against the `gfcl-datagen` social schema.
//!
//! The paper's modifications (Section 8.7.1) are inherited: variable-length
//! paths are fixed to their maximum length, shortest-path queries and
//! edge-(non)existence predicates are removed, and ORDER BY is dropped.
//! Two further schema-level adaptations of ours (documented in
//! EXPERIMENTS.md): `replyOf` targets posts only, so IS07's
//! comment-of-comment step goes through the common parent post; and
//! inequality joins (`t2 <> t1` in IC06) are dropped since the engines do
//! not support variable inequality predicates.

use gfcl_core::query::{col, eq, ge, gt, le, lit, lit_date, ne, PatternQuery};

/// Constants the queries filter on; defaults fit `SocialParams::scale(n)`
/// datasets (ids are dense `0..n`).
#[derive(Debug, Clone, Copy)]
pub struct LdbcParams {
    /// The start person of IS01–IS03 and all IC queries.
    pub person_id: i64,
    /// The start comment of IS04–IS07.
    pub comment_id: i64,
    /// IC02/IC09 creation-date upper bound.
    pub max_date: i64,
    /// IC03/IC04 date window.
    pub window_lo: i64,
    pub window_hi: i64,
    /// IC05 hasMember date lower bound.
    pub member_since: i64,
}

impl LdbcParams {
    /// Reasonable defaults for a dataset with `persons` persons.
    pub fn for_scale(persons: usize) -> LdbcParams {
        LdbcParams {
            person_id: (persons / 2) as i64,
            comment_id: (persons * 4) as i64, // mid-range comment
            max_date: 1_400_000_000,
            window_lo: 1_313_591_219,
            window_hi: 1_513_591_219,
            member_since: 1_267_302_820,
        }
    }
}

/// The 7 IS queries. Returns `(name, query)` pairs.
// One `out.push` block per named query keeps each query's comment
// attached to it; `vec![]` would lose that structure.
#[allow(clippy::vec_init_then_push)]
pub fn is_queries(p: &LdbcParams) -> Vec<(String, PatternQuery)> {
    let mut out = Vec::new();

    // IS01: person profile + location.
    out.push((
        "IS01".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("pl", "Place")
            .edge("loc", "personIsLocatedIn", "p", "pl")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .returns(&[
                ("p", "fName"),
                ("p", "lName"),
                ("p", "birthday"),
                ("p", "locationIP"),
                ("p", "browserUsed"),
                ("p", "gender"),
                ("p", "creationDate"),
                ("pl", "id"),
            ])
            .build(),
    ));

    // IS02: person's comments, their parent posts and those posts' authors.
    out.push((
        "IS02".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("c", "Comment")
            .node("post", "Post")
            .node("op", "Person")
            .edge("hc", "hasCreator", "c", "p")
            .edge("r", "replyOf", "c", "post")
            .edge("phc", "postHasCreator", "post", "op")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .returns(&[
                ("c", "id"),
                ("c", "content"),
                ("c", "creationDate"),
                ("op", "id"),
                ("op", "fName"),
                ("op", "lName"),
            ])
            .build(),
    ));

    // IS03: friends with friendship dates.
    out.push((
        "IS03".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("f", "Person")
            .edge("k", "knows", "p", "f")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .returns(&[("f", "id"), ("f", "fName"), ("f", "lName"), ("k", "date")])
            .build(),
    ));

    // IS04: comment content.
    out.push((
        "IS04".into(),
        PatternQuery::builder()
            .node("c", "Comment")
            .filter(eq(col("c", "id"), lit(p.comment_id)))
            .returns(&[("c", "creationDate"), ("c", "content")])
            .build(),
    ));

    // IS05: comment's creator.
    out.push((
        "IS05".into(),
        PatternQuery::builder()
            .node("c", "Comment")
            .node("p", "Person")
            .edge("hc", "hasCreator", "c", "p")
            .filter(eq(col("c", "id"), lit(p.comment_id)))
            .returns(&[("p", "id"), ("p", "fName"), ("p", "lName")])
            .build(),
    ));

    // IS06: the forum containing the comment's parent post + moderator.
    out.push((
        "IS06".into(),
        PatternQuery::builder()
            .node("c", "Comment")
            .node("pst", "Post")
            .node("f", "Forum")
            .node("m", "Person")
            .edge("r", "replyOf", "c", "pst")
            .edge("co", "containerOf", "f", "pst")
            .edge("hm", "hasModerator", "f", "m")
            .filter(eq(col("c", "id"), lit(p.comment_id)))
            .returns(&[("f", "id"), ("f", "title"), ("m", "id"), ("m", "fName"), ("m", "lName")])
            .build(),
    ));

    // IS07: sibling replies of the comment's parent post and their authors
    // (schema adaptation: replies connect through the common parent post).
    out.push((
        "IS07".into(),
        PatternQuery::builder()
            .node("c0", "Comment")
            .node("pst", "Post")
            .node("c1", "Comment")
            .node("ra", "Person")
            .edge("r0", "replyOf", "c0", "pst")
            .edge("r1", "replyOf", "c1", "pst")
            .edge("hc", "hasCreator", "c1", "ra")
            .filter(eq(col("c0", "id"), lit(p.comment_id)))
            .returns(&[
                ("c1", "id"),
                ("c1", "content"),
                ("c1", "creationDate"),
                ("ra", "id"),
                ("ra", "fName"),
                ("ra", "lName"),
            ])
            .build(),
    ));

    out
}

/// The 11 IC queries the paper evaluates (IC01–IC09, IC11, IC12).
// One `out.push` block per named query keeps each query's comment
// attached to it; `vec![]` would lose that structure.
#[allow(clippy::vec_init_then_push)]
pub fn ic_queries(p: &LdbcParams) -> Vec<(String, PatternQuery)> {
    let mut out = Vec::new();

    // IC01: friends-of-friends-of-friends and their locations.
    out.push((
        "IC01".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("p1", "Person")
            .node("p2", "Person")
            .node("op", "Person")
            .node("pl", "Place")
            .edge("k1", "knows", "p", "p1")
            .edge("k2", "knows", "p1", "p2")
            .edge("k3", "knows", "p2", "op")
            .edge("loc", "personIsLocatedIn", "op", "pl")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .returns(&[
                ("op", "id"),
                ("op", "lName"),
                ("op", "birthday"),
                ("op", "creationDate"),
                ("op", "gender"),
                ("op", "locationIP"),
                ("pl", "name"),
            ])
            .build(),
    ));

    // IC02: recent messages of friends.
    out.push((
        "IC02".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("f", "Person")
            .node("msg", "Comment")
            .edge("k", "knows", "p", "f")
            .edge("hc", "hasCreator", "msg", "f")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .filter(lt_date(col("msg", "creationDate"), p.max_date))
            .returns(&[
                ("f", "id"),
                ("f", "fName"),
                ("f", "lName"),
                ("msg", "id"),
                ("msg", "content"),
                ("msg", "creationDate"),
            ])
            .build(),
    ));

    // IC03: friends-of-friends with messages from two countries in a window.
    out.push((
        "IC03".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("p1", "Person")
            .node("op", "Person")
            .node("pl", "Place")
            .node("mx", "Comment")
            .node("px", "Place")
            .node("my", "Comment")
            .node("py", "Place")
            .edge("k1", "knows", "p", "p1")
            .edge("k2", "knows", "p1", "op")
            .edge("loc", "personIsLocatedIn", "op", "pl")
            .edge("hcx", "hasCreator", "mx", "op")
            .edge("lx", "commentIsLocatedIn", "mx", "px")
            .edge("hcy", "hasCreator", "my", "op")
            .edge("ly", "commentIsLocatedIn", "my", "py")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .filter(ge(col("mx", "creationDate"), lit_date(p.window_lo)))
            .filter(le(col("mx", "creationDate"), lit_date(p.window_hi)))
            .filter(ge(col("my", "creationDate"), lit_date(p.window_lo)))
            .filter(le(col("my", "creationDate"), lit_date(p.window_hi)))
            .filter(eq(col("px", "name"), lit("India")))
            .filter(eq(col("py", "name"), lit("China")))
            .returns(&[("op", "id"), ("op", "fName"), ("op", "lName")])
            .build(),
    ));

    // IC04: tags of posts of friends in a window. This query used to carry
    // `start_at("p")` + `edge_order([1, 2, 3, 0])` hand hints because the
    // declaration order (k0 first) extends *backward* into every person who
    // knows `p` before doing any useful work; the statistics-driven orderer
    // now finds the good order on its own. The hinted variant survives as a
    // regression in `hinted_ic04_regression` below and in the k-hop
    // backward-plan generators.
    out.push((
        "IC04".into(),
        PatternQuery::builder()
            .node("x", "Person")
            .node("p", "Person")
            .node("f", "Person")
            .node("pst", "Post")
            .node("t", "Tag")
            .edge("k0", "knows", "x", "p")
            .edge("k1", "knows", "p", "f")
            .edge("phc", "postHasCreator", "pst", "f")
            .edge("ht", "postHasTag", "pst", "t")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .filter(ge(col("pst", "creationDate"), lit_date(p.window_lo)))
            .filter(le(col("pst", "creationDate"), lit_date(p.window_hi)))
            .returns(&[("t", "name")])
            .build(),
    ));

    // IC05: forums friends-of-friends joined recently, and their posts.
    out.push((
        "IC05".into(),
        PatternQuery::builder()
            .node("p1", "Person")
            .node("p2", "Person")
            .node("p3", "Person")
            .node("f", "Forum")
            .node("pst", "Post")
            .edge("k1", "knows", "p1", "p2")
            .edge("k2", "knows", "p2", "p3")
            .edge("hm", "hasMember", "f", "p3")
            .edge("co", "containerOf", "f", "pst")
            .filter(eq(col("p1", "id"), lit(p.person_id)))
            .filter(gt(col("hm", "date"), lit_date(p.member_since)))
            .returns(&[("f", "title")])
            .build(),
    ));

    // IC06: co-tags of 'Rumi'-tagged posts of friends-of-friends.
    out.push((
        "IC06".into(),
        PatternQuery::builder()
            .node("p1", "Person")
            .node("p2", "Person")
            .node("p3", "Person")
            .node("pst", "Post")
            .node("t1", "Tag")
            .node("t2", "Tag")
            .edge("k1", "knows", "p1", "p2")
            .edge("k2", "knows", "p2", "p3")
            .edge("phc", "postHasCreator", "pst", "p3")
            .edge("ht1", "postHasTag", "pst", "t1")
            .edge("ht2", "postHasTag", "pst", "t2")
            .filter(eq(col("p1", "id"), lit(p.person_id)))
            .filter(eq(col("t1", "name"), lit("Rumi")))
            .filter(ne(col("t2", "name"), lit("Rumi")))
            .returns(&[("t2", "name")])
            .build(),
    ));

    // IC07: who liked the person's comments.
    out.push((
        "IC07".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("cmt", "Comment")
            .node("frnd", "Person")
            .edge("hc", "hasCreator", "cmt", "p")
            .edge("l", "likes", "frnd", "cmt")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .returns(&[
                ("frnd", "id"),
                ("frnd", "fName"),
                ("frnd", "lName"),
                ("l", "date"),
                ("cmt", "content"),
            ])
            .build(),
    ));

    // IC08: replies to the person's posts.
    out.push((
        "IC08".into(),
        PatternQuery::builder()
            .node("p", "Person")
            .node("pst", "Post")
            .node("cmt", "Comment")
            .node("auth", "Person")
            .edge("phc", "postHasCreator", "pst", "p")
            .edge("r", "replyOf", "cmt", "pst")
            .edge("hc", "hasCreator", "cmt", "auth")
            .filter(eq(col("p", "id"), lit(p.person_id)))
            .returns(&[
                ("auth", "id"),
                ("auth", "fName"),
                ("auth", "lName"),
                ("cmt", "creationDate"),
                ("cmt", "id"),
                ("cmt", "content"),
            ])
            .build(),
    ));

    // IC09: recent messages of friends-of-friends.
    out.push((
        "IC09".into(),
        PatternQuery::builder()
            .node("p1", "Person")
            .node("p2", "Person")
            .node("p3", "Person")
            .node("cmt", "Comment")
            .edge("k1", "knows", "p1", "p2")
            .edge("k2", "knows", "p2", "p3")
            .edge("hc", "hasCreator", "cmt", "p3")
            .filter(eq(col("p1", "id"), lit(p.person_id)))
            .filter(lt_date(col("cmt", "creationDate"), p.max_date))
            .returns(&[
                ("p3", "id"),
                ("p3", "fName"),
                ("p3", "lName"),
                ("cmt", "id"),
                ("cmt", "content"),
                ("cmt", "creationDate"),
            ])
            .build(),
    ));

    // IC11: friends-of-friends who worked in China before 2016.
    out.push((
        "IC11".into(),
        PatternQuery::builder()
            .node("p1", "Person")
            .node("p2", "Person")
            .node("p3", "Person")
            .node("org", "Organisation")
            .node("pl", "Place")
            .edge("k1", "knows", "p1", "p2")
            .edge("k2", "knows", "p2", "p3")
            .edge("w", "workAt", "p3", "org")
            .edge("loc", "orgIsLocatedIn", "org", "pl")
            .filter(eq(col("p1", "id"), lit(p.person_id)))
            .filter(lt_i64(col("w", "year"), 2016))
            .filter(eq(col("pl", "name"), lit("China")))
            .returns(&[("p3", "id"), ("p3", "fName"), ("p3", "lName"), ("org", "name")])
            .build(),
    ));

    // IC12: expert replies under a tag class.
    out.push((
        "IC12".into(),
        PatternQuery::builder()
            .node("p1", "Person")
            .node("p2", "Person")
            .node("cmt", "Comment")
            .node("pst", "Post")
            .node("t", "Tag")
            .node("tc", "TagClass")
            .node("sup", "TagClass")
            .edge("k", "knows", "p1", "p2")
            .edge("hc", "hasCreator", "cmt", "p2")
            .edge("r", "replyOf", "cmt", "pst")
            .edge("ht", "postHasTag", "pst", "t")
            .edge("tt", "hasType", "t", "tc")
            .edge("sc", "isSubclassOf", "tc", "sup")
            .filter(eq(col("p1", "id"), lit(p.person_id)))
            .filter(eq(col("tc", "name"), lit("Person")))
            .returns(&[("p2", "id"), ("p2", "fName"), ("p2", "lName")])
            .build(),
    ));

    out
}

/// All 18 LDBC-like queries (IS + IC).
pub fn all_queries(p: &LdbcParams) -> Vec<(String, PatternQuery)> {
    let mut v = is_queries(p);
    v.extend(ic_queries(p));
    v
}

fn lt_date(lhs: gfcl_core::query::Scalar, ts: i64) -> gfcl_core::query::Expr {
    gfcl_core::query::lt(lhs, lit_date(ts))
}

fn lt_i64(lhs: gfcl_core::query::Scalar, k: i64) -> gfcl_core::query::Expr {
    gfcl_core::query::lt(lhs, lit(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_core::plan::plan;
    use gfcl_datagen::SocialParams;

    #[test]
    fn all_queries_plan_against_generated_schema() {
        let raw = gfcl_datagen::generate_social(SocialParams::scale(50));
        let params = LdbcParams::for_scale(50);
        let queries = all_queries(&params);
        assert_eq!(queries.len(), 18);
        for (name, q) in &queries {
            plan(q, &raw.catalog).unwrap_or_else(|e| panic!("{name} failed to plan: {e}"));
        }
    }

    #[test]
    fn queries_start_from_the_seek() {
        let raw = gfcl_datagen::generate_social(SocialParams::scale(50));
        let params = LdbcParams::for_scale(50);
        for (name, q) in all_queries(&params) {
            let p = plan(&q, &raw.catalog).unwrap();
            assert!(
                matches!(p.steps[0], gfcl_core::plan::PlanStep::ScanPk { .. }),
                "{name} should start from a pk seek"
            );
        }
    }

    /// IC04 used to ship with hand-written `start_at`/`edge_order` hints;
    /// keep the hinted variant alive as a regression: it must still plan,
    /// and produce exactly the same result as the optimizer's plan.
    #[test]
    fn hinted_ic04_regression() {
        use gfcl_core::{Engine, GfClEngine};
        use gfcl_storage::{ColumnarGraph, StorageConfig};
        use std::sync::Arc;

        let persons = 60;
        let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
        let params = LdbcParams::for_scale(persons);
        let q = ic_queries(&params).into_iter().find(|(n, _)| n == "IC04").unwrap().1;
        let mut hinted = q.clone();
        hinted.hints.start = Some("p".into());
        hinted.hints.edge_order = Some(vec![1, 2, 3, 0]);

        let g = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
        let engine = GfClEngine::new(g);
        let plain = engine.execute(&q).unwrap().canonical();
        let with_hints = engine.execute(&hinted).unwrap().canonical();
        assert_eq!(plain, with_hints);
        // The unhinted plan is ordered by statistics.
        let p = engine.plan(&q).unwrap();
        assert_eq!(p.order_source, gfcl_core::OrderSource::Stats);
    }
}

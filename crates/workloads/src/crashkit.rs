//! Shared fixture for the crash-recovery torture harness: a deterministic
//! base graph and a deterministic per-commit mutation, used both by the
//! `crash_writer` binary (which gets SIGKILLed mid-stream) and by the
//! `crash_recovery` test (which replays the same commits on a reference
//! store to decide what a correctly recovered graph must look like).
//!
//! Commit `k` is uniquely witnessed by the vertex with primary key
//! [`pk_of`]`(k)`, so the recovered store's durable prefix can be read
//! back without any side-channel from the killed writer. Every WAL
//! record either survives whole or not at all, so recovery must surface
//! the state after commit `m` for some `m < commits` — never a torn
//! in-between.

use gfcl_common::{DataType, Result, Value};
use gfcl_storage::{Cardinality, Catalog, GraphStore, PropertyDef, RawGraph, StorageConfig};
use std::path::Path;

/// Primary key of the `A` vertex inserted by commit `k`.
pub fn pk_of(k: u64) -> i64 {
    10_000 + k as i64
}

/// The deterministic baseline: two keyed labels, a ManyMany edge with a
/// payload, and a ManyOne edge — the same shapes the interleave suite
/// mutates.
pub fn base_raw() -> RawGraph {
    use DataType::Int64;
    let mut cat = Catalog::new();
    let a = cat
        .add_vertex_label(
            "A",
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("x", Int64),
                PropertyDef::new("tag", DataType::String),
            ],
        )
        .unwrap();
    let b = cat
        .add_vertex_label("B", vec![PropertyDef::new("id", Int64), PropertyDef::new("y", Int64)])
        .unwrap();
    let ab = cat
        .add_edge_label("AB", a, b, Cardinality::ManyMany, vec![PropertyDef::new("w", Int64)])
        .unwrap();
    let sg = cat.add_edge_label("SINGLE", a, b, Cardinality::ManyOne, vec![]).unwrap();
    cat.set_primary_key(a, "id").unwrap();
    cat.set_primary_key(b, "id").unwrap();

    let mut raw = RawGraph::new(cat);
    let (n_a, n_b) = (8usize, 6usize);
    raw.vertices[a as usize].count = n_a;
    for v in 0..n_a {
        raw.vertices[a as usize].props[0].push_i64(v as i64);
        raw.vertices[a as usize].props[1].push_i64((v as i64 * 3) % 7);
        raw.vertices[a as usize].props[2].push_str(format!("seed-{v}"));
    }
    raw.vertices[b as usize].count = n_b;
    for v in 0..n_b {
        raw.vertices[b as usize].props[0].push_i64(v as i64);
        raw.vertices[b as usize].props[1].push_i64(v as i64 - 2);
    }
    for (src, dst, w) in [(0u64, 1u64, 5i64), (1, 2, -3), (2, 0, 8), (7, 5, 0)] {
        let t = &mut raw.edges[ab as usize];
        t.src.push(src);
        t.dst.push(dst);
        t.props[0].push_i64(w);
    }
    for (src, dst) in [(0u64, 0u64), (3, 2), (6, 4)] {
        let t = &mut raw.edges[sg as usize];
        t.src.push(src);
        t.dst.push(dst);
    }
    raw.validate().unwrap();
    raw
}

/// Apply commit `k`'s batch to `store` and commit it durably. Each batch
/// inserts the witness vertex, wires it into both edge labels, and (for
/// variety across the WAL) updates and tombstones earlier state on a
/// fixed schedule.
pub fn apply_commit(store: &GraphStore, k: u64) -> Result<u64> {
    let mut txn = store.begin_write();
    let off = txn.insert_vertex(
        "A",
        &[
            ("id", Value::Int64(pk_of(k))),
            ("x", Value::Int64(k as i64)),
            ("tag", Value::String(format!("commit-{k}"))),
        ],
    )?;
    let b = k % 6;
    txn.insert_edge("AB", off, b, &[("w", Value::Int64(k as i64 - 10))])?;
    if k.is_multiple_of(2) {
        txn.insert_edge("SINGLE", off, (k + 1) % 6, &[])?;
    }
    if k.is_multiple_of(3) {
        if let Some(prev) = txn.lookup_pk("A", pk_of(k.saturating_sub(3)))? {
            txn.update_vertex("A", prev, &[("x", Value::Int64(-(k as i64)))])?;
        }
    }
    if k % 7 == 4 {
        // Tombstone a baseline edge once per cycle; misses after the
        // first cycle are fine.
        let _ = txn.delete_edge("AB", 0, 1);
    }
    txn.commit()
}

/// Run the whole writer protocol against the store at `dir`: create (or
/// reopen) and apply commits `start..commits`, merging every fifth commit
/// so the torture harness also kills inside the merge's rename window.
pub fn run_writer(dir: &Path, commits: u64) -> Result<()> {
    let store = if dir.join("graph.gfcl").exists() {
        GraphStore::open(dir, StorageConfig::default())?
    } else {
        GraphStore::create(dir, &base_raw(), StorageConfig::default())?
    };
    // Resume after the last durable witness so reopened runs extend the
    // prefix instead of colliding on primary keys.
    let snap = store.snapshot();
    let view = gfcl_storage::GraphView::new(snap.base(), Some(snap.delta()));
    let mut start = 0u64;
    while view.lookup_pk(0, pk_of(start)).is_some() {
        start += 1;
    }
    drop(snap);
    // The harness reads these lines over a pipe to aim its SIGKILL at a
    // specific commit boundary, so every line must be flushed eagerly
    // (piped stdout is block-buffered).
    use std::io::Write;
    let mut out = std::io::stdout();
    for k in start..commits {
        apply_commit(&store, k)?;
        writeln!(out, "committed {k}").and_then(|()| out.flush()).map_err(io_line)?;
        if k % 5 == 4 {
            store.merge()?;
            writeln!(out, "merged {k}").and_then(|()| out.flush()).map_err(io_line)?;
        }
    }
    Ok(())
}

fn io_line(e: std::io::Error) -> gfcl_common::Error {
    gfcl_common::Error::Storage(format!("crash_writer stdout: {e}"))
}

/// The reference state after commits `0..=m` (exclusive of nothing): a
/// fresh in-memory store with the same batches applied. Recovery is
/// correct iff the recovered graph answers queries exactly like one of
/// these references.
pub fn reference_store(m_plus_one: u64) -> GraphStore {
    let store = GraphStore::in_memory(&base_raw(), StorageConfig::default()).unwrap();
    for k in 0..m_plus_one {
        apply_commit(&store, k).unwrap();
    }
    store
}

//! The 33 JOB benchmark queries ("a" variants, Appendix C of the paper),
//! translated to [`PatternQuery`] against the `gfcl-datagen` movie schema.
//!
//! The paper's adaptations are inherited: string `min()` aggregations are
//! replaced by `COUNT(*)` (GraphflowDB only aggregates numeric types), and
//! each query is the star/tree join over the property-graph conversion of
//! IMDb. Most queries are star joins around `title` — the shape where the
//! paper reports the largest LBP factorization gains (Section 8.7.2).

use gfcl_core::query::{
    col, contains, eq, ge, gt, in_set, le, lit, lt, ne, starts_with, Expr, PatternQuery,
    QueryBuilder,
};

fn q() -> QueryBuilder {
    QueryBuilder::default()
}

/// All 33 queries as `(name, query)` pairs.
pub fn all_queries() -> Vec<(String, PatternQuery)> {
    let mut out: Vec<(String, PatternQuery)> = Vec::new();
    let mut push = |name: &str, query: PatternQuery| out.push((name.to_owned(), query));

    // 1a
    push(
        "1a",
        q().node("t", "title")
            .node("cn", "company_name")
            .node("mii", "mov_info_2")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("has_mov_info_2", "t", "mii")
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(contains("mc", "note", "(co-production)"))
            .filter(eq(col("mii", "info_type"), lit("top 250 rank")))
            .returns_count()
            .build(),
    );
    // 2a
    push(
        "2a",
        q().node("t", "title")
            .node("cn", "company_name")
            .node("k", "keyword")
            .edge_anon("movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .filter(eq(col("cn", "country_code"), lit("[de]")))
            .filter(eq(col("k", "keyword"), lit("character-name-in-title")))
            .returns_count()
            .build(),
    );
    // 3a
    push(
        "3a",
        q().node("t", "title")
            .node("k", "keyword")
            .node("mi", "movie_info")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("has_movie_info", "t", "mi")
            .filter(gt(col("t", "production_year"), lit(2005)))
            .filter(contains("k", "keyword", "sequel"))
            .filter(eq(col("mi", "info"), lit("Sweden")))
            .returns_count()
            .build(),
    );
    // 4a
    push(
        "4a",
        q().node("t", "title")
            .node("k", "keyword")
            .node("mii", "mov_info_2")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("has_mov_info_2", "t", "mii")
            .filter(gt(col("t", "production_year"), lit(2005)))
            .filter(contains("k", "keyword", "sequel"))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .filter(gt(col("mii", "info"), lit("5.0")))
            .returns_count()
            .build(),
    );
    // 5a
    push(
        "5a",
        q().node("t", "title")
            .node("cn", "company_name")
            .node("mi", "movie_info")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("has_movie_info", "t", "mi")
            .filter(gt(col("t", "production_year"), lit(2005)))
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(contains("mc", "note", "(theatrical)"))
            .filter(contains("mc", "note", "(France)"))
            .returns_count()
            .build(),
    );
    // 6a
    push(
        "6a",
        q().node("t", "title")
            .node("n", "name")
            .node("k", "keyword")
            .edge_anon("cast_info", "t", "n")
            .edge_anon("movie_keyword", "t", "k")
            .filter(gt(col("t", "production_year"), lit(2010)))
            .filter(contains("n", "name", "Downey"))
            .filter(eq(col("k", "keyword"), lit("marvel-cinematic-universe")))
            .returns_count()
            .build(),
    );
    // 7a
    push(
        "7a",
        q().node("t", "title")
            .node("t2", "title")
            .node("n", "name")
            .node("an", "aka_name")
            .node("pi", "person_info")
            .edge("ml", "movie_link", "t", "t2")
            .edge_anon("cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .edge_anon("has_person_info", "n", "pi")
            .filter(ge(col("t", "production_year"), lit(1980)))
            .filter(le(col("t", "production_year"), lit(1995)))
            .filter(eq(col("ml", "link_type"), lit("features")))
            .filter(ge(col("n", "name_pcode_cf"), lit("A")))
            .filter(le(col("n", "name_pcode_cf"), lit("F")))
            .filter(eq(col("n", "gender"), lit("m")))
            .filter(contains("an", "name", "a"))
            .filter(eq(col("pi", "info_type"), lit("mini biography")))
            .filter(eq(col("pi", "note"), lit("Volker Boehm")))
            .returns_count()
            .build(),
    );
    // 8a
    push(
        "8a",
        q().node("t", "title")
            .node("cn", "company_name")
            .node("n", "name")
            .node("an", "aka_name")
            .edge("mc", "movie_companies", "t", "cn")
            .edge("ci", "cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .filter(contains("mc", "note", "(Japan)"))
            .filter(eq(col("cn", "country_code"), lit("[jp]")))
            .filter(eq(col("ci", "note"), lit("(voice: English version)")))
            .filter(eq(col("ci", "role"), lit("actress")))
            .filter(contains("n", "name", "Yo"))
            .returns_count()
            .build(),
    );
    // 9a
    push(
        "9a",
        q().node("t", "title")
            .node("cn", "company_name")
            .node("n", "name")
            .node("an", "aka_name")
            .edge("mc", "movie_companies", "t", "cn")
            .edge("ci", "cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .filter(ge(col("t", "production_year"), lit(2005)))
            .filter(le(col("t", "production_year"), lit(2015)))
            .filter(contains("mc", "note", "(USA)"))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .filter(eq(col("ci", "role"), lit("actress")))
            .filter(starts_with("ci", "note", "(voice"))
            .filter(eq(col("n", "gender"), lit("f")))
            .filter(contains("n", "name", "Ang"))
            .returns_count()
            .build(),
    );
    // 10a
    push(
        "10a",
        q().node("t", "title")
            .node("cn", "company_name")
            .node("n", "name")
            .edge_anon("movie_companies", "t", "cn")
            .edge("ci", "cast_info", "t", "n")
            .filter(gt(col("t", "production_year"), lit(2005)))
            .filter(eq(col("cn", "country_code"), lit("[ru]")))
            .filter(contains("ci", "note", "(uncredited)"))
            .filter(contains("ci", "note", "(voice)"))
            .filter(eq(col("ci", "role"), lit("actor")))
            .returns_count()
            .build(),
    );
    // 11a
    push(
        "11a",
        q().node("t", "title")
            .node("t2", "title")
            .node("cn", "company_name")
            .node("k", "keyword")
            .edge("ml", "movie_link", "t", "t2")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .filter(gt(col("t", "production_year"), lit(1950)))
            .filter(lt(col("t", "production_year"), lit(2000)))
            .filter(in_set("ml", "link_type", &["follows", "followedBy"]))
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(ne(col("cn", "country_code"), lit("[pl]")))
            .filter(contains("cn", "name", "Film"))
            .filter(eq(col("k", "keyword"), lit("sequel")))
            .returns_count()
            .build(),
    );
    // 12a
    push(
        "12a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("mii", "mov_info_2")
            .edge_anon("has_movie_info", "t", "mi")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("has_mov_info_2", "t", "mii")
            .filter(ge(col("t", "production_year"), lit(2005)))
            .filter(le(col("t", "production_year"), lit(2008)))
            .filter(gt(col("mii", "info"), lit("8.0")))
            .filter(eq(col("mi", "info_type"), lit("genres")))
            .filter(eq(col("mi", "info"), lit("Drama")))
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .returns_count()
            .build(),
    );
    // 13a
    push(
        "13a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("mii", "mov_info_2")
            .edge_anon("has_movie_info", "t", "mi")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("has_mov_info_2", "t", "mii")
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(eq(col("mi", "info_type"), lit("release dates")))
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(eq(col("cn", "country_code"), lit("[de]")))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .returns_count()
            .build(),
    );
    // 14a
    push(
        "14a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("k", "keyword")
            .node("mii", "mov_info_2")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("has_mov_info_2", "t", "mii")
            .filter(gt(col("t", "production_year"), lit(2010)))
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(eq(col("mi", "info"), lit("USA")))
            .filter(eq(col("mi", "info_type"), lit("countries")))
            .filter(eq(col("k", "keyword"), lit("murder")))
            .filter(lt(col("mii", "info"), lit("8.5")))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .returns_count()
            .build(),
    );
    // 15a
    push(
        "15a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("k", "keyword")
            .edge_anon("has_movie_info", "t", "mi")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .filter(gt(col("t", "production_year"), lit(2000)))
            .filter(starts_with("mi", "info", "USA:"))
            .filter(contains("mi", "note", "internet"))
            .filter(eq(col("mi", "info_type"), lit("release dates")))
            .filter(contains("mc", "note", "(worldwide)"))
            .filter(contains("mc", "note", "(200"))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .returns_count()
            .build(),
    );
    // 16a
    push(
        "16a",
        q().node("t", "title")
            .node("k", "keyword")
            .node("cn", "company_name")
            .node("n", "name")
            .node("an", "aka_name")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("movie_companies", "t", "cn")
            .edge_anon("cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .filter(ge(col("t", "episode_nr"), lit(50)))
            .filter(lt(col("t", "episode_nr"), lit(100)))
            .filter(eq(col("k", "keyword"), lit("character-name-in-title")))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .returns_count()
            .build(),
    );
    // 17a
    push(
        "17a",
        q().node("t", "title")
            .node("n", "name")
            .node("cn", "company_name")
            .node("k", "keyword")
            .edge_anon("cast_info", "t", "n")
            .edge_anon("movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .filter(starts_with("n", "name", "B"))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .filter(eq(col("k", "keyword"), lit("character-name-in-title")))
            .returns_count()
            .build(),
    );
    // 18a
    push(
        "18a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("mii", "mov_info_2")
            .node("n", "name")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge_anon("cast_info", "t", "n")
            .filter(eq(col("mi", "info_type"), lit("budget")))
            .filter(eq(col("mii", "info_type"), lit("votes")))
            .filter(contains("n", "name", "Tim"))
            .filter(eq(col("n", "gender"), lit("m")))
            .returns_count()
            .build(),
    );
    // 19a
    push(
        "19a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("n", "name")
            .node("an", "aka_name")
            .edge_anon("has_movie_info", "t", "mi")
            .edge("mc", "movie_companies", "t", "cn")
            .edge("ci", "cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .filter(ge(col("t", "production_year"), lit(2005)))
            .filter(le(col("t", "production_year"), lit(2009)))
            .filter(eq(col("mi", "info_type"), lit("release dates")))
            .filter(starts_with("mi", "info", "Japan:"))
            .filter(contains("mc", "note", "(USA)"))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .filter(starts_with("ci", "note", "(voice"))
            .filter(eq(col("n", "gender"), lit("f")))
            .filter(eq(col("ci", "role"), lit("actress")))
            .filter(contains("n", "name", "Ang"))
            .returns_count()
            .build(),
    );
    // 20a
    push(
        "20a",
        q().node("t", "title")
            .node("k", "keyword")
            .node("cc", "complete_cast")
            .node("n", "name")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("has_complete_cast", "t", "cc")
            .edge("ci", "cast_info", "t", "n")
            .filter(gt(col("t", "production_year"), lit(1950)))
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(eq(col("k", "keyword"), lit("superhero")))
            .filter(eq(col("cc", "subject"), lit("cast")))
            .filter(in_set("cc", "status", &["complete", "complete+verified"]))
            .filter(contains("ci", "name", "Tony"))
            .filter(contains("ci", "name", "Stark"))
            .returns_count()
            .build(),
    );
    // 21a
    push(
        "21a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("k", "keyword")
            .node("t2", "title")
            .edge_anon("has_movie_info", "t", "mi")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .edge("ml", "movie_link", "t", "t2")
            .filter(ge(col("t", "production_year"), lit(1950)))
            .filter(le(col("t", "production_year"), lit(2000)))
            .filter(eq(col("mi", "info"), lit("Germany")))
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(ne(col("cn", "country_code"), lit("[pl]")))
            .filter(contains("cn", "name", "Film"))
            .filter(contains("k", "keyword", "sequel"))
            .filter(in_set("ml", "link_type", &["follows", "followedBy"]))
            .returns_count()
            .build(),
    );
    // 22a
    push(
        "22a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("mii", "mov_info_2")
            .node("cn", "company_name")
            .node("k", "keyword")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .filter(gt(col("t", "production_year"), lit(2008)))
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(eq(col("mi", "info"), lit("USA")))
            .filter(eq(col("mi", "info_type"), lit("countries")))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .filter(lt(col("mii", "info"), lit("7.0")))
            .filter(contains("mc", "note", "(200"))
            .filter(ne(col("cn", "country_code"), lit("[us]")))
            .filter(eq(col("k", "keyword"), lit("murder")))
            .returns_count()
            .build(),
    );
    // 23a
    push(
        "23a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("k", "keyword")
            .node("cc", "complete_cast")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("movie_companies", "t", "cn")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("has_complete_cast", "t", "cc")
            .filter(gt(col("t", "production_year"), lit(2000)))
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(eq(col("mi", "info_type"), lit("release dates")))
            .filter(contains("mi", "note", "internet"))
            .filter(starts_with("mi", "info", "USA:"))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .filter(eq(col("cc", "status"), lit("complete+verified")))
            .returns_count()
            .build(),
    );
    // 24a
    push(
        "24a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("cn", "company_name")
            .node("n", "name")
            .node("an", "aka_name")
            .node("k", "keyword")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("movie_companies", "t", "cn")
            .edge("ci", "cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .edge_anon("movie_keyword", "t", "k")
            .filter(gt(col("t", "production_year"), lit(2010)))
            .filter(eq(col("mi", "info_type"), lit("release dates")))
            .filter(starts_with("mi", "info", "USA:"))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .filter(starts_with("ci", "note", "(voice:"))
            .filter(eq(col("ci", "role"), lit("actress")))
            .filter(eq(col("n", "gender"), lit("f")))
            .filter(eq(col("k", "keyword"), lit("hero")))
            .returns_count()
            .build(),
    );
    // 25a
    push(
        "25a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("mii", "mov_info_2")
            .node("k", "keyword")
            .node("n", "name")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("cast_info", "t", "n")
            .filter(eq(col("mi", "info_type"), lit("genres")))
            .filter(eq(col("mii", "info_type"), lit("votes")))
            .filter(eq(col("k", "keyword"), lit("murder")))
            .filter(eq(col("mi", "info"), lit("Horror")))
            .filter(eq(col("n", "gender"), lit("m")))
            .returns_count()
            .build(),
    );
    // 26a
    push(
        "26a",
        q().node("t", "title")
            .node("mii", "mov_info_2")
            .node("k", "keyword")
            .node("n", "name")
            .node("cc", "complete_cast")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge_anon("movie_keyword", "t", "k")
            .edge("ci", "cast_info", "t", "n")
            .edge_anon("has_complete_cast", "t", "cc")
            .filter(gt(col("t", "production_year"), lit(2000)))
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(gt(col("mii", "info"), lit("7.0")))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .filter(eq(col("k", "keyword"), lit("superhero")))
            .filter(contains("ci", "name", "man"))
            .filter(eq(col("cc", "subject"), lit("cast")))
            .filter(in_set("cc", "status", &["complete", "complete+verified"]))
            .returns_count()
            .build(),
    );
    // 27a
    push(
        "27a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("k", "keyword")
            .node("t2", "title")
            .node("cn", "company_name")
            .node("cc", "complete_cast")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("movie_keyword", "t", "k")
            .edge("ml", "movie_link", "t", "t2")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("has_complete_cast", "t", "cc")
            .filter(ge(col("t", "production_year"), lit(1950)))
            .filter(le(col("t", "production_year"), lit(2000)))
            .filter(eq(col("mi", "info"), lit("Sweden")))
            .filter(eq(col("k", "keyword"), lit("sequel")))
            .filter(in_set("ml", "link_type", &["follows", "followedBy"]))
            .filter(eq(col("mc", "company_type"), lit("production company")))
            .filter(contains("cn", "name", "Film"))
            .filter(ne(col("cn", "country_code"), lit("[pl]")))
            .filter(in_set("cc", "subject", &["cast", "crew"]))
            .filter(eq(col("cc", "status"), lit("complete")))
            .returns_count()
            .build(),
    );
    // 28a
    push(
        "28a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("mii", "mov_info_2")
            .node("k", "keyword")
            .node("cn", "company_name")
            .node("cc", "complete_cast")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge_anon("movie_keyword", "t", "k")
            .edge("mc", "movie_companies", "t", "cn")
            .edge_anon("has_complete_cast", "t", "cc")
            .filter(gt(col("t", "production_year"), lit(2000)))
            .filter(eq(col("t", "kind"), lit("movie")))
            .filter(eq(col("mi", "info"), lit("Germany")))
            .filter(eq(col("mi", "info_type"), lit("countries")))
            .filter(lt(col("mii", "info"), lit("8.5")))
            .filter(eq(col("mii", "info_type"), lit("rating")))
            .filter(eq(col("k", "keyword"), lit("murder")))
            .filter(contains("mc", "note", "(200"))
            .filter(ne(col("cn", "country_code"), lit("[us]")))
            .filter(eq(col("cc", "subject"), lit("crew")))
            .filter(ne(col("cc", "status"), lit("complete+verified")))
            .returns_count()
            .build(),
    );
    // 29a
    push(
        "29a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("k", "keyword")
            .node("cc", "complete_cast")
            .node("n", "name")
            .node("an", "aka_name")
            .node("pi", "person_info")
            .node("cn", "company_name")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("has_complete_cast", "t", "cc")
            .edge("ci", "cast_info", "t", "n")
            .edge_anon("has_aka_name", "n", "an")
            .edge_anon("has_person_info", "n", "pi")
            .edge_anon("movie_companies", "t", "cn")
            .filter(le(col("t", "production_year"), lit(2010)))
            .filter(ge(col("t", "production_year"), lit(2000)))
            .filter(eq(col("t", "title"), lit("Shrek 2")))
            .filter(eq(col("mi", "info_type"), lit("release dates")))
            .filter(starts_with("mi", "info", "Japan:"))
            .filter(eq(col("k", "keyword"), lit("computer-animation")))
            .filter(eq(col("cc", "status"), lit("complete+verified")))
            .filter(eq(col("cc", "subject"), lit("crew")))
            .filter(eq(col("ci", "role"), lit("actress")))
            .filter(eq(col("ci", "name"), lit("Queen")))
            .filter(contains("ci", "note", "(voice"))
            .filter(eq(col("n", "gender"), lit("f")))
            .filter(contains("n", "name", "An"))
            .filter(eq(col("pi", "info_type"), lit("trivia")))
            .filter(eq(col("cn", "country_code"), lit("[us]")))
            .returns_count()
            .build(),
    );
    // 30a
    push(
        "30a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("mii", "mov_info_2")
            .node("k", "keyword")
            .node("n", "name")
            .node("cc", "complete_cast")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("cast_info", "t", "n")
            .edge_anon("has_complete_cast", "t", "cc")
            .filter(gt(col("t", "production_year"), lit(2000)))
            .filter(eq(col("mi", "info_type"), lit("genres")))
            .filter(eq(col("mi", "info"), lit("Horror")))
            .filter(eq(col("mii", "info_type"), lit("votes")))
            .filter(eq(col("k", "keyword"), lit("murder")))
            .filter(eq(col("n", "gender"), lit("m")))
            .filter(in_set("cc", "subject", &["cast", "crew"]))
            .filter(eq(col("cc", "status"), lit("complete+verified")))
            .returns_count()
            .build(),
    );
    // 31a
    push(
        "31a",
        q().node("t", "title")
            .node("mi", "movie_info")
            .node("mii", "mov_info_2")
            .node("k", "keyword")
            .node("n", "name")
            .node("cn", "company_name")
            .edge_anon("has_movie_info", "t", "mi")
            .edge_anon("has_mov_info_2", "t", "mii")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("cast_info", "t", "n")
            .edge_anon("movie_companies", "t", "cn")
            .filter(eq(col("mi", "info_type"), lit("genres")))
            .filter(eq(col("mi", "info"), lit("Horror")))
            .filter(eq(col("mii", "info_type"), lit("votes")))
            .filter(eq(col("k", "keyword"), lit("murder")))
            .filter(eq(col("n", "gender"), lit("m")))
            .returns_count()
            .build(),
    );
    // 32a
    push(
        "32a",
        q().node("t", "title")
            .node("k", "keyword")
            .node("t2", "title")
            .edge_anon("movie_keyword", "t", "k")
            .edge_anon("movie_link", "t", "t2")
            .filter(eq(col("k", "keyword"), lit("character-name-in-title")))
            .returns_count()
            .build(),
    );
    // 33a
    push(
        "33a",
        q().node("t1", "title")
            .node("t2", "title")
            .node("mii1", "mov_info_2")
            .node("mii2", "mov_info_2")
            .node("cn1", "company_name")
            .node("cn2", "company_name")
            .edge("ml", "movie_link", "t1", "t2")
            .edge_anon("has_mov_info_2", "t1", "mii1")
            .edge_anon("has_mov_info_2", "t2", "mii2")
            .edge_anon("movie_companies", "t1", "cn1")
            .edge_anon("movie_companies", "t2", "cn2")
            .filter(eq(col("t1", "kind"), lit("tv series")))
            .filter(in_set("ml", "link_type", &["follows", "followedBy"]))
            .filter(eq(col("t2", "kind"), lit("tv series")))
            .filter(ge(col("t2", "production_year"), lit(2005)))
            .filter(le(col("t2", "production_year"), lit(2008)))
            .filter(eq(col("mii1", "info_type"), lit("rating")))
            .filter(eq(col("mii2", "info_type"), lit("rating")))
            .filter(lt(col("mii2", "info"), lit("3.0")))
            .filter(eq(col("cn1", "country_code"), lit("[us]")))
            .returns_count()
            .build(),
    );

    out
}

/// Queries as a map from name for selective lookups.
pub fn query(name: &str) -> Option<PatternQuery> {
    all_queries().into_iter().find(|(n, _)| n == name).map(|(_, q)| q)
}

/// Helper: conjunction of filters (kept for workload extensions).
pub fn all_of(filters: Vec<Expr>) -> Expr {
    Expr::And(filters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfcl_core::plan::plan;
    use gfcl_datagen::MovieParams;

    #[test]
    fn all_33_queries_plan() {
        let raw = gfcl_datagen::generate_movies(MovieParams::scale(50));
        let queries = all_queries();
        assert_eq!(queries.len(), 33);
        for (name, q) in &queries {
            plan(q, &raw.catalog).unwrap_or_else(|e| panic!("{name} failed to plan: {e}"));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(query("17a").is_some());
        assert!(query("99z").is_none());
    }

    #[test]
    fn queries_are_star_heavy() {
        // Most JOB queries are stars around `t` — the LBP-friendly shape.
        let stars = all_queries()
            .iter()
            .filter(|(_, q)| {
                let deg0 = q.edges.iter().filter(|e| e.from == 0 || e.to == 0).count();
                deg0 >= 2
            })
            .count();
        assert!(stars >= 25, "got {stars}");
    }
}

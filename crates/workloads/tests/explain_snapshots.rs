//! `Engine::explain` snapshots for every workload query.
//!
//! The rendered plan — chosen order, operators, flatten points, and
//! per-step cardinality estimates — is pinned against checked-in snapshot
//! files under `tests/snapshots/`. Dataset generation is seeded, and
//! statistics are exact, so the output is fully deterministic; any change
//! to the optimizer's cost model, tie-breaking, or rendering shows up as a
//! reviewable snapshot diff.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! GFCL_BLESS=1 cargo test -p gfcl_workloads --test explain_snapshots
//! ```

use std::sync::Arc;

use gfcl_core::{Engine, GfClEngine, PatternQuery};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
use gfcl_workloads::ldbc::{self, LdbcParams};
use gfcl_workloads::{ga_queries, job, khop, KhopMode};

fn render_suite(raw: &RawGraph, queries: &[(String, PatternQuery)]) -> String {
    let graph = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph);
    let mut out = String::new();
    for (name, q) in queries {
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(
            &engine.explain(q).unwrap_or_else(|e| panic!("{name} failed to explain: {e}")),
        );
        out.push('\n');
    }
    out
}

fn assert_snapshot(file: &str, actual: &str) {
    let path = format!("{}/tests/snapshots/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("GFCL_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read snapshot {path}: {e}; run with GFCL_BLESS=1 to create it")
    });
    if expected != actual {
        // Show the first diverging line for a readable failure.
        let diverge = expected
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
        panic!(
            "EXPLAIN snapshot {file} changed at line {}: \n  expected: {:?}\n  actual:   {:?}\n\
             If intentional, re-bless with GFCL_BLESS=1 and review the diff.",
            diverge + 1,
            expected.lines().nth(diverge).unwrap_or(""),
            actual.lines().nth(diverge).unwrap_or(""),
        );
    }
}

#[test]
fn ldbc_explain_snapshots() {
    let persons = 80;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    assert_snapshot("ldbc.explain.txt", &render_suite(&raw, &ldbc::all_queries(&params)));
}

#[test]
fn grouped_explain_snapshots() {
    // The GA grouped/top-k suite: snapshots pin the GROUP sink line (keys,
    // flatten avoidance, estimated group count) and ORDER BY/LIMIT.
    let persons = 80;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    assert_snapshot("grouped.explain.txt", &render_suite(&raw, &ga_queries(&params)));
}

#[test]
fn job_explain_snapshots() {
    let raw = gfcl_datagen::generate_movies(MovieParams::scale(80));
    assert_snapshot("job.explain.txt", &render_suite(&raw, &job::all_queries()));
}

#[test]
fn khop_explain_snapshots() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 1000,
        avg_degree: 5.0,
        exponent: 1.8,
        seed: 7,
    });
    let mut queries = Vec::new();
    for hops in 1..=3 {
        for (mode_name, mode) in [
            ("count", KhopMode::CountStar),
            ("filter", KhopMode::LastEdgeGt(1_400_000_000)),
            ("chain", KhopMode::Chain(1_350_000_000)),
        ] {
            for backward in [false, true] {
                queries.push((
                    format!("khop-{hops}-{mode_name}-bwd={backward}"),
                    khop("NODE", "LINK", "ts", hops, mode, backward),
                ));
            }
        }
    }
    assert_snapshot("khop.explain.txt", &render_suite(&raw, &queries));
}

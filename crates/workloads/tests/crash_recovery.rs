//! Crash-recovery torture: SIGKILL the `crash_writer` subprocess at
//! seeded, randomized points in its commit stream — including inside the
//! WAL fsync window and the merge's rename window — then reopen the store
//! and check the recovered graph is **exactly** the state after some
//! commit boundary:
//!
//! * `GraphStore::open` must succeed (a torn WAL tail is truncated, a
//!   half-finished merge is repaired), never panic;
//! * the durable witnesses form a gap-free prefix `0..m` of the commit
//!   stream — commits are atomic, so no torn in-between state;
//! * query answers equal a reference store that replayed exactly `m`
//!   commits, at 1 and `GFCL_THREADS` workers;
//! * the recovered store accepts and durably persists new commits.
//!
//! Failures print the iteration's seed; rerun with
//! `GFCL_CRASH_SEED=<seed> GFCL_CRASH_ITERS=1`.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use gfcl_core::query::{col, gt, lit, PatternQuery, QueryBuilder};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_storage::{GraphStore, GraphView, StorageConfig};
use gfcl_workloads::crashkit::{self, pk_of};

/// Commits the writer attempts per iteration; kills land in `0..COMMITS`.
const COMMITS: u64 = 120;

fn iterations() -> u64 {
    std::env::var("GFCL_CRASH_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(52)
}

fn base_seed() -> u64 {
    std::env::var("GFCL_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

fn par_threads() -> usize {
    std::env::var("GFCL_THREADS").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(4)
}

/// splitmix64: tiny, deterministic, and good enough to scatter kill
/// points; no RNG dependency needed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn queries() -> Vec<(String, PatternQuery)> {
    let scan = QueryBuilder::default()
        .node("a", "A")
        .returns(&[("a", "id"), ("a", "x"), ("a", "tag")])
        .build();
    let join = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .filter(gt(col("e", "w"), lit(-100)))
        .returns(&[("a", "id"), ("b", "id"), ("e", "w")])
        .build();
    let single = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("s", "SINGLE", "a", "b")
        .returns(&[("a", "id"), ("b", "id")])
        .build();
    vec![("scan".into(), scan), ("join".into(), join), ("single".into(), single)]
}

/// Canonical answers over `store`'s current snapshot at 1 and N workers
/// (asserting the two agree).
fn answers(store: &GraphStore, qs: &[(String, PatternQuery)], seed: u64) -> Vec<String> {
    let snap = store.snapshot();
    let serial = GfClEngine::with_snapshot_options(&snap, ExecOptions::serial());
    let parallel =
        GfClEngine::with_snapshot_options(&snap, ExecOptions::with_threads(par_threads()));
    qs.iter()
        .map(|(name, q)| {
            let s = serial
                .execute(q)
                .unwrap_or_else(|e| panic!("seed={seed}: {name} serial: {e}"))
                .canonical();
            let p = parallel
                .execute(q)
                .unwrap_or_else(|e| panic!("seed={seed}: {name} parallel: {e}"))
                .canonical();
            assert_eq!(s, p, "seed={seed}: {name} serial vs parallel diverge after recovery");
            s
        })
        .collect()
}

/// Durable witness prefix of the recovered store: the largest gap-free
/// `0..m`; asserts no witness exists past the first gap.
fn recovered_prefix(store: &GraphStore, seed: u64) -> u64 {
    let snap = store.snapshot();
    let view = GraphView::new(snap.base(), Some(snap.delta()));
    let mut m = 0u64;
    while view.lookup_pk(0, pk_of(m)).is_some() {
        m += 1;
    }
    for k in m..COMMITS + 8 {
        assert!(
            view.lookup_pk(0, pk_of(k)).is_none(),
            "seed={seed}: witness {k} survived but {m} did not — recovery is not a prefix",
        );
    }
    m
}

fn run_iteration(seed: u64, dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let mut rng = seed;

    let mut child = Command::new(env!("CARGO_BIN_EXE_crash_writer"))
        .arg(dir)
        .arg(COMMITS.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("seed={seed}: spawning crash_writer: {e}"));

    // Aim the SIGKILL: either a raw early kill (which can land inside
    // `GraphStore::create` itself) or just past a specific commit line,
    // so the blow lands inside the next commit's WAL append / fsync — or
    // inside a merge's rename pair. `acked` counts the `committed <k>`
    // lines the writer printed *after* its fsync returned: those commits
    // were acknowledged durable and must never be lost.
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut lines = stdout.lines();
    let mut acked = 0u64;
    if splitmix(&mut rng).is_multiple_of(4) {
        std::thread::sleep(Duration::from_micros(splitmix(&mut rng) % 12_000));
    } else {
        let target = format!("committed {}", splitmix(&mut rng) % COMMITS);
        for line in lines.by_ref() {
            match line {
                Ok(l) => {
                    if l.starts_with("committed ") {
                        acked += 1;
                    }
                    if l == target {
                        break;
                    }
                }
                Err(_) => break, // writer already gone
            }
        }
        std::thread::sleep(Duration::from_micros(splitmix(&mut rng) % 2_500));
    }
    let _ = child.kill(); // SIGKILL on unix; no-op if it already finished
    let _ = child.wait();
    // Drain acknowledgements that were in the pipe when the kill landed.
    for line in lines.map_while(|l| l.ok()) {
        if line.starts_with("committed ") {
            acked += 1;
        }
    }

    // Reopen: must repair and replay without panicking. A clean error is
    // acceptable only when the kill interrupted store *creation* — i.e.
    // nothing was ever acknowledged.
    let store = match GraphStore::open(dir, StorageConfig::default()) {
        Ok(s) => s,
        Err(e) if acked == 0 => {
            assert!(
                !dir.join("graph.wal").exists(),
                "seed={seed}: store has a WAL but will not open: {e}",
            );
            return;
        }
        Err(e) => panic!("seed={seed}: reopen lost {acked} acknowledged commits: {e}"),
    };
    let m = recovered_prefix(&store, seed);
    assert!(
        (acked..=acked + 1).contains(&m),
        "seed={seed}: {acked} commits acknowledged but {m} recovered",
    );

    // The recovered graph must answer exactly like a reference store that
    // replayed exactly the durable prefix.
    let qs = queries();
    let got = answers(&store, &qs, seed);
    let reference = crashkit::reference_store(m);
    let want = answers(&reference, &qs, seed);
    assert_eq!(got, want, "seed={seed}: recovered state (prefix {m}) != replayed reference");

    // The recovered store must keep working: one more durable commit,
    // visible across another clean reopen.
    crashkit::apply_commit(&store, COMMITS + 7)
        .unwrap_or_else(|e| panic!("seed={seed}: post-recovery commit failed: {e}"));
    drop(store);
    let reopened = GraphStore::open(dir, StorageConfig::default())
        .unwrap_or_else(|e| panic!("seed={seed}: second reopen failed: {e}"));
    let snap = reopened.snapshot();
    let view = GraphView::new(snap.base(), Some(snap.delta()));
    assert!(
        view.lookup_pk(0, pk_of(COMMITS + 7)).is_some(),
        "seed={seed}: post-recovery commit did not survive reopen",
    );
}

#[test]
fn seeded_sigkill_recovers_a_commit_prefix() {
    let root: PathBuf =
        std::env::temp_dir().join(format!("gfcl_crash_recovery_{}", std::process::id()));
    let (base, iters) = (base_seed(), iterations());
    for i in 0..iters {
        let seed = base.wrapping_add(i);
        let dir = root.join(format!("iter_{seed}"));
        run_iteration(seed, &dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The writer run to completion (no kill) recovers everything: sanity
/// check that the harness's reference machinery agrees with a clean run.
#[test]
fn uninterrupted_writer_is_fully_durable() {
    let dir =
        std::env::temp_dir().join(format!("gfcl_crash_recovery_clean_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let commits = 23u64;
    let status = Command::new(env!("CARGO_BIN_EXE_crash_writer"))
        .arg(&dir)
        .arg(commits.to_string())
        .stdout(Stdio::null())
        .status()
        .expect("spawn crash_writer");
    assert!(status.success(), "clean writer run failed");

    let store = GraphStore::open(&dir, StorageConfig::default()).expect("reopen clean store");
    assert_eq!(recovered_prefix(&store, 0), commits);
    let qs = queries();
    assert_eq!(answers(&store, &qs, 0), answers(&crashkit::reference_store(commits), &qs, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

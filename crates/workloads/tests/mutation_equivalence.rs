//! The headline mutable-graph invariant: **mutate-then-query must be
//! byte-identical to rebuild-from-scratch**, across all four engines and
//! worker counts.
//!
//! Each test builds a baseline graph, applies a scripted mutation batch
//! through [`WriteTxn`] (inserts, updates, deletes of vertices and edges —
//! including string properties, cascading vertex deletes, and tombstones
//! over both CSR and single-cardinality adjacency), pins a snapshot, and
//! runs a query set two ways:
//!
//! 1. **Overlay**: engines constructed `with_snapshot`, reading
//!    `(baseline ⊎ delta) ∖ tombstones` through the delta overlay;
//! 2. **Rebuild**: [`merged_raw`] exports the same logical graph to a
//!    fresh [`RawGraph`], which goes through the normal build pipeline.
//!
//! Every `canonical()` output must agree exactly — GF-CL serial, GF-CL at
//! `GFCL_THREADS` workers, GF-CV, GF-RV, and REL. A final pass calls
//! [`GraphStore::merge`] and checks the folded store still agrees.

use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_common::Value;
use gfcl_core::query::PatternQuery;
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::SocialParams;
use gfcl_storage::{
    merged_raw, ColumnarGraph, GraphSnapshot, GraphStore, RawGraph, RowGraph, StorageConfig,
    WriteTxn,
};
use gfcl_workloads::ldbc::{self, LdbcParams};

/// Parallel worker count under test: `GFCL_THREADS`, default 4.
fn par_threads() -> usize {
    std::env::var("GFCL_THREADS").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(4)
}

/// Run `q` through every engine over the pinned snapshot and through every
/// engine over a from-scratch rebuild of the merged graph; assert all the
/// canonical outputs are byte-identical.
fn assert_mutate_equals_rebuild(
    base_raw: &RawGraph,
    snapshot: &GraphSnapshot,
    queries: &[(String, PatternQuery)],
) {
    let base_rows = Arc::new(RowGraph::build(base_raw).unwrap());
    let merged = merged_raw(snapshot.base(), snapshot.delta()).unwrap();
    let rebuilt = Arc::new(ColumnarGraph::build(&merged, StorageConfig::default()).unwrap());
    let rebuilt_rows = Arc::new(RowGraph::build(&merged).unwrap());

    let overlay: Vec<(&str, Box<dyn Engine>)> = vec![
        (
            "GF-CL/1+delta",
            Box::new(GfClEngine::with_snapshot_options(snapshot, ExecOptions::serial())),
        ),
        (
            "GF-CL/N+delta",
            Box::new(GfClEngine::with_snapshot_options(
                snapshot,
                ExecOptions::with_threads(par_threads()),
            )),
        ),
        ("GF-CV+delta", Box::new(GfCvEngine::with_snapshot(snapshot))),
        ("GF-RV+delta", Box::new(GfRvEngine::with_snapshot(base_rows, snapshot))),
        ("REL+delta", Box::new(RelEngine::with_snapshot(snapshot))),
    ];
    let rebuild: Vec<(&str, Box<dyn Engine>)> = vec![
        (
            "GF-CL/1 rebuilt",
            Box::new(GfClEngine::with_options(Arc::clone(&rebuilt), ExecOptions::serial())),
        ),
        (
            "GF-CL/N rebuilt",
            Box::new(GfClEngine::with_options(
                Arc::clone(&rebuilt),
                ExecOptions::with_threads(par_threads()),
            )),
        ),
        ("GF-CV rebuilt", Box::new(GfCvEngine::new(Arc::clone(&rebuilt)))),
        ("GF-RV rebuilt", Box::new(GfRvEngine::new(rebuilt_rows))),
        ("REL rebuilt", Box::new(RelEngine::new(rebuilt))),
    ];

    for (name, q) in queries {
        let truth = rebuild[0]
            .1
            .execute(q)
            .unwrap_or_else(|e| panic!("{name} failed on rebuilt graph: {e}"))
            .canonical();
        for (engine_name, engine) in rebuild.iter().skip(1).chain(overlay.iter()) {
            let got = engine
                .execute(q)
                .unwrap_or_else(|e| panic!("{name} failed on {engine_name}: {e}"))
                .canonical();
            assert_eq!(got, truth, "{name}: {engine_name} diverges from rebuild-from-scratch");
        }
    }
}

/// The scripted batch: exercises every delta shape the overlay has to
/// merge — new vertices (string props land in the delta's string
/// extension), in-place updates of baseline and delta rows, cascading
/// vertex deletes, delta edges whose endpoints span baseline and delta,
/// tombstoned baseline edges, and a delete + reinsert of the same edge.
fn scripted_batch(txn: &mut WriteTxn<'_>) {
    let p = |id: i64| Value::Int64(id);
    // New persons: ids far above the generated range so pk lookups are
    // unambiguous; string props exercise the delta string extension.
    let zoe = txn
        .insert_vertex(
            "Person",
            &[
                ("id", p(9_001)),
                ("fName", Value::String("Zoe".into())),
                ("lName", Value::String("Zappa".into())),
                ("gender", Value::String("female".into())),
                ("birthday", Value::Date(650_000_000)),
                ("creationDate", Value::Date(1_400_000_001)),
            ],
        )
        .unwrap();
    let yuri = txn
        .insert_vertex(
            "Person",
            &[
                ("id", p(9_002)),
                ("fName", Value::String("Yuri".into())),
                ("gender", Value::String("male".into())),
                ("creationDate", Value::Date(1_400_000_002)),
            ],
        )
        .unwrap();

    let off = |txn: &WriteTxn<'_>, label: &str, id: i64| {
        txn.lookup_pk(label, id).unwrap().unwrap_or_else(|| panic!("{label} {id} missing"))
    };
    let p0 = off(txn, "Person", 0);
    let p1 = off(txn, "Person", 1);
    let p2 = off(txn, "Person", 2);
    let p3 = off(txn, "Person", 3);

    // Updates: a baseline row and a freshly inserted delta row.
    txn.update_vertex("Person", p1, &[("fName", Value::String("Renamed".into()))]).unwrap();
    txn.update_vertex("Person", zoe, &[("lName", Value::String("Zephyr".into()))]).unwrap();

    // Delta `knows` edges: baseline→delta, delta→baseline, delta→delta,
    // and a duplicate of a (probable) baseline pair.
    let d = |ts: i64| [("date", Value::Date(ts))];
    txn.insert_edge("knows", p0, zoe, &d(1_450_000_000)).unwrap();
    txn.insert_edge("knows", zoe, p2, &d(1_450_000_001)).unwrap();
    txn.insert_edge("knows", zoe, yuri, &d(1_450_000_002)).unwrap();
    txn.insert_edge("knows", yuri, p0, &d(1_450_000_003)).unwrap();
    txn.insert_edge("knows", p2, p3, &d(1_450_000_004)).unwrap();

    // Tombstone a baseline edge, then delete + reinsert another pair so
    // occurrence accounting is exercised.
    txn.delete_edge("knows", p2, p3).unwrap();
    txn.insert_edge("knows", p2, p3, &d(1_450_000_005)).unwrap();

    // Cascading vertex delete: takes out every incident edge (knows,
    // likes, hasCreator, ...) in one op.
    let victim = off(txn, "Person", 7);
    txn.delete_vertex("Person", victim).unwrap();

    // Single-cardinality adjacency: tombstone whichever ManyOne edge p3
    // has (edges are addressed by endpoints, so probe every organisation;
    // misses are fine) and give a delta vertex a fresh one.
    let org1 = off(txn, "Organisation", 1);
    for org_id in 0..8 {
        if let Ok(Some(org)) = txn.lookup_pk("Organisation", org_id) {
            if txn.delete_edge("studyAt", p3, org).is_ok() {
                break;
            }
        }
    }
    txn.insert_edge("studyAt", zoe, org1, &[("year", Value::Int64(2_019))]).unwrap();
}

#[test]
fn ldbc_suite_mutate_equals_rebuild() {
    let persons = 60;
    let base_raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let store = GraphStore::in_memory(&base_raw, StorageConfig::default()).unwrap();

    let mut txn = store.begin_write();
    scripted_batch(&mut txn);
    assert!(txn.op_count() > 10);
    txn.commit().unwrap();

    let snapshot = store.snapshot();
    let queries = ldbc::all_queries(&LdbcParams::for_scale(persons));
    assert_mutate_equals_rebuild(&base_raw, &snapshot, &queries);
}

/// After [`GraphStore::merge`] folds the delta into a new baseline, the
/// published snapshot must answer every query exactly as the pre-merge
/// overlay did — and its delta must be empty.
#[test]
fn merge_preserves_query_results() {
    let persons = 40;
    let base_raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let store = GraphStore::in_memory(&base_raw, StorageConfig::default()).unwrap();

    let mut txn = store.begin_write();
    scripted_batch(&mut txn);
    txn.commit().unwrap();

    let before = store.snapshot();
    let queries = ldbc::all_queries(&LdbcParams::for_scale(persons));
    let pre: Vec<String> = queries
        .iter()
        .map(|(name, q)| {
            GfClEngine::with_snapshot_options(&before, ExecOptions::serial())
                .execute(q)
                .unwrap_or_else(|e| panic!("{name} failed pre-merge: {e}"))
                .canonical()
        })
        .collect();

    store.merge().unwrap();
    let after = store.snapshot();
    assert!(after.delta().is_empty(), "merge must fold the delta away");
    assert!(after.epoch() > before.epoch());

    for ((name, q), want) in queries.iter().zip(&pre) {
        for threads in [1, par_threads()] {
            let opts = if threads <= 1 {
                ExecOptions::serial()
            } else {
                ExecOptions::with_threads(threads)
            };
            let got = GfClEngine::with_snapshot_options(&after, opts)
                .execute(q)
                .unwrap_or_else(|e| panic!("{name} failed post-merge: {e}"))
                .canonical();
            assert_eq!(&got, want, "{name}: merge changed the answer (threads={threads})");
        }
    }
    // The pinned pre-merge snapshot is immutable: it still answers from
    // its own epoch's overlay.
    for ((name, q), want) in queries.iter().zip(&pre) {
        let got = GfClEngine::with_snapshot_options(&before, ExecOptions::serial())
            .execute(q)
            .unwrap_or_else(|e| panic!("{name} failed on pinned snapshot: {e}"))
            .canonical();
        assert_eq!(&got, want, "{name}: pinned snapshot changed after merge");
    }
}

/// An aborted transaction leaves the published snapshot untouched.
#[test]
fn abort_is_invisible() {
    let base_raw = gfcl_datagen::generate_social(SocialParams::scale(30));
    let store = GraphStore::in_memory(&base_raw, StorageConfig::default()).unwrap();
    let epoch = store.snapshot().epoch();

    let mut txn = store.begin_write();
    scripted_batch(&mut txn);
    txn.abort();

    let snap = store.snapshot();
    assert_eq!(snap.epoch(), epoch);
    assert!(snap.delta().is_empty());
}

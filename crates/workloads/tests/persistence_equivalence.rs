//! Save/reopen equivalence: a graph persisted with [`ColumnarGraph::save`]
//! and reopened cold through a buffer pool *smaller than the graph* must
//! answer every query byte-identically to the in-memory graph it was saved
//! from — across all engines that read columnar storage, at 1 and 4
//! workers, with every read faulting pages on demand.
//!
//! Also the crash-safety contract: malformed files (bad magic, truncated,
//! corrupted metadata) fail `open` with a clean [`gfcl_common::Error`], never
//! a panic.

use std::path::PathBuf;
use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, RelEngine};
use gfcl_core::query::{col, eq, ge, lit, lt, starts_with, Agg, PatternQuery};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::{PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
use proptest::prelude::*;

/// Worker counts under test.
const THREADS: [usize; 2] = [1, 4];

/// A pool this small forces eviction on any graph beyond a few pages.
const TINY_POOL_PAGES: usize = 2;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gfcl_persist_{}_{name}.gfcl", std::process::id()))
}

/// Engines over one columnar graph (the row engine has no on-disk format,
/// so persistence equivalence is a columnar-engines property).
fn engines(g: &Arc<ColumnarGraph>) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(GfClEngine::new(Arc::clone(g))),
        Box::new(GfCvEngine::new(Arc::clone(g))),
        Box::new(RelEngine::new(Arc::clone(g))),
    ]
}

/// Build from `raw`, save, reopen with a cold 2-page pool, and assert every
/// query produces byte-identical output on the reopened graph, on every
/// engine, at every worker count.
fn assert_persistence_equivalent(raw: &RawGraph, name: &str, queries: &[(String, PatternQuery)]) {
    let built = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let path = tmp(name);
    built.save(&path).unwrap();
    let config = StorageConfig { buffer_pool_pages: TINY_POOL_PAGES, ..StorageConfig::default() };
    let reopened = Arc::new(ColumnarGraph::open(&path, config).unwrap());
    std::fs::remove_file(&path).unwrap();

    let pool = reopened.buffer_pool().expect("reopened graph has a pool");
    // CI's persistence job sets GFCL_BUFFER_MB, which overrides the
    // per-test capacity — assert whatever the env resolution says.
    assert_eq!(
        pool.capacity(),
        gfcl_storage::BufferPool::capacity_from_env(TINY_POOL_PAGES).unwrap()
    );
    assert!(
        reopened.memory_breakdown().pageable > 0,
        "{name}: reopened graph should serve value arrays from disk"
    );

    let mem_engines = engines(&built);
    let disk_engines = engines(&reopened);
    for (qname, q) in queries {
        for (m, d) in mem_engines.iter().zip(&disk_engines) {
            for threads in THREADS {
                let opts = ExecOptions::with_threads(threads);
                let a = m
                    .execute_with(q, &opts)
                    .unwrap_or_else(|e| panic!("{qname} failed in-memory on {}: {e}", m.name()));
                let b = d
                    .execute_with(q, &opts)
                    .unwrap_or_else(|e| panic!("{qname} failed reopened on {}: {e}", d.name()));
                assert_eq!(
                    a.canonical(),
                    b.canonical(),
                    "{qname}: reopening changed {} output at {threads} worker(s)",
                    m.name()
                );
            }
        }
        // Serial LBP: exactly equal, not just canonically.
        let a = mem_engines[0].execute_with(q, &ExecOptions::serial()).unwrap();
        let b = disk_engines[0].execute_with(q, &ExecOptions::serial()).unwrap();
        assert_eq!(a, b, "{qname}: serial outputs diverge after reopen");
    }
    // The equivalence must have exercised the faulting path, with eviction
    // keeping memory bounded. Pinned pages can push the pool past its
    // nominal capacity transiently (it over-allocates rather than
    // deadlocks), so the bound allows slack for concurrently pinned pages.
    let stats = pool.stats();
    assert!(stats.faults > 0, "{name}: no page was ever faulted");
    assert!(
        pool.occupancy() <= pool.capacity() + 64,
        "{name}: pool occupancy {} far exceeds capacity {}",
        pool.occupancy(),
        pool.capacity()
    );
    // More faults than the pool can hold many times over implies re-faults,
    // which imply evictions (capacity-relative so a GFCL_BUFFER_MB override
    // with a pool big enough to hold the whole graph doesn't trip it).
    if stats.faults > 16 * pool.capacity() as u64 {
        assert!(stats.evictions > 0, "{name}: pool never evicted under pressure");
    }
}

fn powerlaw_queries(n: i64) -> Vec<(String, PatternQuery)> {
    let khop = |hops: usize| {
        let mut b = PatternQuery::builder();
        for i in 0..=hops {
            b = b.node(&format!("v{i}"), "NODE");
        }
        for i in 0..hops {
            b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
        }
        b
    };
    vec![
        ("scan-all-rows".into(), khop(0).returns(&[("v0", "id")]).build()),
        (
            "scan-pushed-range".into(),
            khop(0).filter(lt(col("v0", "id"), lit(n / 7))).returns(&[("v0", "id")]).build(),
        ),
        (
            "one-hop-edge-prop".into(),
            khop(1)
                .filter(ge(col("v0", "id"), lit(n - n / 8)))
                .returns(&[("v0", "id"), ("e1", "ts")])
                .build(),
        ),
        ("two-hop-count".into(), khop(2).returns_count().build()),
        (
            "grouped".into(),
            khop(1)
                .filter(lt(col("v0", "id"), lit(n / 4)))
                .group_by(&[("v0", "id")])
                .returns_agg(vec![Agg::count_star()])
                .build(),
        ),
    ]
}

fn social_queries() -> Vec<(String, PatternQuery)> {
    let knows1 = || {
        PatternQuery::builder().node("p", "Person").node("q", "Person").edge("k", "knows", "p", "q")
    };
    vec![
        (
            "string-dictionary".into(),
            knows1().filter(starts_with("p", "fName", "A")).returns_count().build(),
        ),
        (
            "date-and-gender".into(),
            knows1()
                .filter(ge(col("p", "birthday"), lit(300_000_000)))
                .filter(eq(col("p", "gender"), lit("female")))
                .returns(&[("p", "id"), ("q", "id")])
                .build(),
        ),
    ]
}

#[test]
fn powerlaw_survives_reopen_cold() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 3000,
        avg_degree: 5.0,
        exponent: 1.8,
        seed: 23,
    });
    assert_persistence_equivalent(&raw, "powerlaw", &powerlaw_queries(3000));
}

#[test]
fn social_survives_reopen_cold() {
    let raw = gfcl_datagen::generate_social(SocialParams::scale(120));
    assert_persistence_equivalent(&raw, "social", &social_queries());
}

#[test]
fn figure1_example_survives_reopen() {
    // Small enough that everything fits in the pool — the warm path.
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("p", "PERSON")
        .node("o", "ORG")
        .edge("w", "WORKAT", "p", "o")
        .returns(&[("p", "name"), ("o", "name"), ("w", "doj")])
        .build();
    assert_persistence_equivalent(&raw, "example", &[("workat".into(), q)]);
}

#[test]
fn open_errors_are_clean_not_panics() {
    let raw = RawGraph::example();
    let g = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
    let path = tmp("corrupt");
    g.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Bad magic.
    let mut bad = bytes.clone();
    bad[..4].copy_from_slice(b"NOPE");
    std::fs::write(&path, &bad).unwrap();
    assert!(ColumnarGraph::open(&path, StorageConfig::default()).is_err());

    // Truncations at several depths (header, mid-pages, tail).
    for keep in [0usize, 40, 70_000, bytes.len().saturating_sub(3)] {
        std::fs::write(&path, &bytes[..keep.min(bytes.len())]).unwrap();
        assert!(
            ColumnarGraph::open(&path, StorageConfig::default()).is_err(),
            "truncation to {keep} bytes must fail cleanly"
        );
    }

    // Corrupted metadata tail.
    let mut bad = bytes.clone();
    let n = bad.len();
    bad[n - 1] ^= 0x55;
    std::fs::write(&path, &bad).unwrap();
    assert!(ColumnarGraph::open(&path, StorageConfig::default()).is_err());

    // Nonexistent path.
    std::fs::remove_file(&path).unwrap();
    assert!(ColumnarGraph::open(&path, StorageConfig::default()).is_err());
}

// ---- Randomized graphs ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_powerlaw_survives_reopen(
        nodes in 40usize..220,
        avg_degree in 1.0f64..5.0,
        seed in 0u64..1000,
        cut in 0.0f64..1.0,
    ) {
        let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
            nodes,
            avg_degree,
            exponent: 1.8,
            seed,
        });
        let n = nodes as i64;
        let k = (n as f64 * cut) as i64;
        let khop = |hops: usize| {
            let mut b = PatternQuery::builder();
            for i in 0..=hops {
                b = b.node(&format!("v{i}"), "NODE");
            }
            for i in 0..hops {
                b = b.edge(
                    &format!("e{}", i + 1),
                    "LINK",
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                );
            }
            b
        };
        let queries = vec![
            (
                format!("rand-scan[{k}]"),
                khop(0).filter(ge(col("v0", "id"), lit(k))).returns(&[("v0", "id")]).build(),
            ),
            (
                format!("rand-one-hop[{k}]"),
                khop(1).filter(lt(col("v0", "id"), lit(k))).returns_count().build(),
            ),
        ];
        assert_persistence_equivalent(&raw, &format!("rand_{nodes}_{seed}"), &queries);
    }
}

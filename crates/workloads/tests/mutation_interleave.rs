//! Snapshot isolation under interleaved writers and readers: random
//! mutation batches are applied through [`WriteTxn`] while corpus queries
//! run against pinned snapshots at 1 and `GFCL_THREADS` workers.
//!
//! Invariants checked per batch:
//!
//! * a snapshot pinned *before* a batch answers identically before,
//!   during (ops applied but uncommitted), and after the commit — readers
//!   never observe a half-applied batch;
//! * serial and morsel-parallel GF-CL agree on every snapshot;
//! * at the end, [`GraphStore::merge`] does not change any answer, and
//!   the overlay agrees with a from-scratch rebuild of [`merged_raw`].

use std::sync::Arc;

use gfcl_common::Value;
use gfcl_core::query::{col, ge, gt, lit, PatternQuery, QueryBuilder};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_storage::{
    merged_raw, Cardinality, Catalog, ColumnarGraph, GraphSnapshot, GraphStore, PropertyDef,
    RawGraph, StorageConfig,
};
use proptest::prelude::*;

/// Parallel worker count under test: `GFCL_THREADS`, default 4.
fn par_threads() -> usize {
    std::env::var("GFCL_THREADS").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(4)
}

/// One random mutation; vertex operands are indices into the harness's
/// list of offsets it has seen, so ops stay meaningful as the graph
/// shrinks and grows.
#[derive(Debug, Clone)]
enum Op {
    InsertA { x: i64 },
    InsertB { y: i64 },
    UpdateA { slot: usize, x: i64 },
    DeleteA { slot: usize },
    InsertEdge { a: usize, b: usize, w: i64 },
    DeleteEdge { a: usize, b: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-50i64..50).prop_map(|x| Op::InsertA { x }),
        (-50i64..50).prop_map(|y| Op::InsertB { y }),
        (0usize..64, -50i64..50).prop_map(|(slot, x)| Op::UpdateA { slot, x }),
        (0usize..64).prop_map(|slot| Op::DeleteA { slot }),
        (0usize..64, 0usize..64, -30i64..30).prop_map(|(a, b, w)| Op::InsertEdge { a, b, w }),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::DeleteEdge { a, b }),
    ]
}

#[derive(Debug, Clone)]
struct Scenario {
    n_a: usize,
    n_b: usize,
    ab: Vec<(u64, u64, i64)>,
    ops: Vec<Op>,
    threshold: i64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (2usize..16, 2usize..16)
        .prop_flat_map(|(n_a, n_b)| {
            let ab = proptest::collection::vec((0..n_a as u64, 0..n_b as u64, -30i64..30), 0..48);
            let ops = proptest::collection::vec(op_strategy(), 1..32);
            (Just(n_a), Just(n_b), ab, ops, -20i64..20)
        })
        .prop_map(|(n_a, n_b, ab, ops, threshold)| Scenario { n_a, n_b, ab, ops, threshold })
}

/// Two labels with integer primary keys, a ManyMany and a ManyOne edge.
fn base_raw(s: &Scenario) -> RawGraph {
    use gfcl_common::DataType::Int64;
    let mut cat = Catalog::new();
    let a = cat
        .add_vertex_label("A", vec![PropertyDef::new("id", Int64), PropertyDef::new("x", Int64)])
        .unwrap();
    let b = cat
        .add_vertex_label("B", vec![PropertyDef::new("id", Int64), PropertyDef::new("y", Int64)])
        .unwrap();
    let ab = cat
        .add_edge_label("AB", a, b, Cardinality::ManyMany, vec![PropertyDef::new("w", Int64)])
        .unwrap();
    let sg = cat
        .add_edge_label("SINGLE", a, b, Cardinality::ManyOne, vec![PropertyDef::new("w", Int64)])
        .unwrap();
    cat.set_primary_key(a, "id").unwrap();
    cat.set_primary_key(b, "id").unwrap();

    let mut raw = RawGraph::new(cat);
    raw.vertices[a as usize].count = s.n_a;
    for v in 0..s.n_a {
        raw.vertices[a as usize].props[0].push_i64(v as i64);
        raw.vertices[a as usize].props[1].push_i64((v as i64 * 7) % 23 - 11);
    }
    raw.vertices[b as usize].count = s.n_b;
    for v in 0..s.n_b {
        raw.vertices[b as usize].props[0].push_i64(v as i64);
        raw.vertices[b as usize].props[1].push_i64((v as i64 * 5) % 19 - 9);
    }
    for &(src, dst, w) in &s.ab {
        let t = &mut raw.edges[ab as usize];
        t.src.push(src);
        t.dst.push(dst);
        t.props[0].push_i64(w);
    }
    // A sparse ManyOne edge: every third A vertex points somewhere.
    for v in (0..s.n_a as u64).step_by(3) {
        let t = &mut raw.edges[sg as usize];
        t.src.push(v);
        t.dst.push(v % s.n_b as u64);
        t.props[0].push_i64(v as i64 - 4);
    }
    raw.validate().unwrap();
    raw
}

fn queries(t: i64) -> Vec<(String, PatternQuery)> {
    let count = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .filter(gt(col("e", "w"), lit(t)))
        .returns_count()
        .build();
    let rows = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .filter(ge(col("a", "x"), lit(t)))
        .returns(&[("a", "x"), ("b", "y")])
        .build();
    let single = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("s", "SINGLE", "a", "b")
        .returns_sum("a", "x")
        .build();
    let scan = QueryBuilder::default().node("a", "A").returns(&[("a", "id"), ("a", "x")]).build();
    vec![
        ("count".into(), count),
        ("rows".into(), rows),
        ("single-sum".into(), single),
        ("scan".into(), scan),
    ]
}

/// Canonical answers for every query at 1 and N workers, asserting the
/// two agree.
fn answers(snapshot: &GraphSnapshot, qs: &[(String, PatternQuery)]) -> Vec<String> {
    let serial = GfClEngine::with_snapshot_options(snapshot, ExecOptions::serial());
    let parallel =
        GfClEngine::with_snapshot_options(snapshot, ExecOptions::with_threads(par_threads()));
    qs.iter()
        .map(|(name, q)| {
            let s = serial.execute(q).unwrap_or_else(|e| panic!("{name} serial: {e}")).canonical();
            let p =
                parallel.execute(q).unwrap_or_else(|e| panic!("{name} parallel: {e}")).canonical();
            assert_eq!(s, p, "{name}: serial vs {} workers diverge", par_threads());
            s
        })
        .collect()
}

fn run_scenario(s: &Scenario) {
    let raw = base_raw(s);
    let store = GraphStore::in_memory(&raw, StorageConfig::default()).unwrap();
    let qs = queries(s.threshold);

    // Offsets the harness knows about; ops index into these.
    let mut a_offs: Vec<u64> = (0..s.n_a as u64).collect();
    let mut b_offs: Vec<u64> = (0..s.n_b as u64).collect();
    let mut next_id = 1_000i64;

    for batch in s.ops.chunks(4) {
        let pinned = store.snapshot();
        let before = answers(&pinned, &qs);

        let mut txn = store.begin_write();
        for op in batch {
            match op {
                Op::InsertA { x } => {
                    next_id += 1;
                    let off = txn
                        .insert_vertex(
                            "A",
                            &[("id", Value::Int64(next_id)), ("x", Value::Int64(*x))],
                        )
                        .unwrap();
                    a_offs.push(off);
                }
                Op::InsertB { y } => {
                    next_id += 1;
                    let off = txn
                        .insert_vertex(
                            "B",
                            &[("id", Value::Int64(next_id)), ("y", Value::Int64(*y))],
                        )
                        .unwrap();
                    b_offs.push(off);
                }
                Op::UpdateA { slot, x } => {
                    if a_offs.is_empty() {
                        continue;
                    }
                    let off = a_offs[slot % a_offs.len()];
                    // The target may already be tombed by an earlier
                    // DeleteA in this run; a rejected update is fine.
                    let _ = txn.update_vertex("A", off, &[("x", Value::Int64(*x))]);
                }
                Op::DeleteA { slot } => {
                    if a_offs.len() <= 1 {
                        continue;
                    }
                    let off = a_offs.remove(slot % a_offs.len());
                    txn.delete_vertex("A", off).unwrap();
                }
                Op::InsertEdge { a, b, w } => {
                    if a_offs.is_empty() || b_offs.is_empty() {
                        continue;
                    }
                    let (src, dst) = (a_offs[a % a_offs.len()], b_offs[b % b_offs.len()]);
                    let _ = txn.insert_edge("AB", src, dst, &[("w", Value::Int64(*w))]);
                }
                Op::DeleteEdge { a, b } => {
                    if a_offs.is_empty() || b_offs.is_empty() {
                        continue;
                    }
                    let (src, dst) = (a_offs[a % a_offs.len()], b_offs[b % b_offs.len()]);
                    // Misses (no such live edge) are expected.
                    let _ = txn.delete_edge("AB", src, dst);
                }
            }
        }

        // Uncommitted ops are invisible: the pinned snapshot (and a fresh
        // one — nothing published yet) still answer exactly as before.
        assert_eq!(answers(&pinned, &qs), before, "pinned snapshot saw uncommitted ops");
        assert_eq!(answers(&store.snapshot(), &qs), before, "a fresh snapshot saw uncommitted ops");

        txn.commit().unwrap();

        // After the commit the pinned snapshot is still frozen at its
        // own epoch.
        assert_eq!(answers(&pinned, &qs), before, "pinned snapshot changed after commit");
    }

    // Merge must not change any answer, and the overlay must agree with a
    // from-scratch rebuild of the merged graph.
    let pre_merge = store.snapshot();
    let want = answers(&pre_merge, &qs);
    let merged = merged_raw(pre_merge.base(), pre_merge.delta()).unwrap();
    let rebuilt = Arc::new(ColumnarGraph::build(&merged, StorageConfig::default()).unwrap());
    let clean = GfClEngine::with_options(rebuilt, ExecOptions::serial());
    for ((name, q), want) in qs.iter().zip(&want) {
        let got = clean.execute(q).unwrap_or_else(|e| panic!("{name} rebuilt: {e}")).canonical();
        assert_eq!(&got, want, "{name}: overlay diverges from rebuild");
    }

    store.merge().unwrap();
    assert_eq!(answers(&store.snapshot(), &qs), want, "merge changed an answer");
    assert_eq!(answers(&pre_merge, &qs), want, "pinned snapshot changed across merge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn interleaved_mutations_preserve_snapshot_isolation(s in scenario_strategy()) {
        run_scenario(&s);
    }
}

/// A fixed smoke scenario so the invariant also runs under `--test-threads`
/// variations without proptest in the loop.
#[test]
fn scripted_interleave_smoke() {
    let s = Scenario {
        n_a: 6,
        n_b: 5,
        ab: vec![(0, 1, 3), (1, 2, -4), (2, 0, 9), (5, 4, 0), (0, 1, 7)],
        ops: vec![
            Op::InsertA { x: 11 },
            Op::InsertEdge { a: 6, b: 1, w: 5 },
            Op::DeleteA { slot: 2 },
            Op::UpdateA { slot: 0, x: -7 },
            Op::DeleteEdge { a: 0, b: 1 },
            Op::InsertB { y: 2 },
            Op::InsertEdge { a: 0, b: 5, w: -1 },
        ],
        threshold: 1,
    };
    run_scenario(&s);
}

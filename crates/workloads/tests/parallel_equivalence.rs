//! Serial-vs-parallel equivalence of the list-based processor: for every
//! LDBC-like, JOB-like, and k-hop workload query, GF-CL at `threads = 1`
//! must produce the same canonical output as GF-CL at `threads = N`
//! (N = `GFCL_THREADS`, default 4), plus a proptest over random graphs.
//!
//! This is the safety net for the morsel-driven driver: the scan cursor
//! partitions work nondeterministically between workers, so any missing
//! per-worker state isolation or a non-associative sink merge shows up
//! here as a canonical-output mismatch.

use std::sync::Arc;

use gfcl_core::query::{col, ge, gt, lit, lt, PatternQuery, QueryBuilder};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::{Cardinality, Catalog, ColumnarGraph, PropertyDef, RawGraph, StorageConfig};
use gfcl_workloads::ldbc::{self, LdbcParams};
use gfcl_workloads::{job, khop, KhopMode};
use proptest::prelude::*;

/// Parallel worker count under test: `GFCL_THREADS`, default 4.
fn par_threads() -> usize {
    std::env::var("GFCL_THREADS").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(4)
}

fn assert_serial_parallel_agree(raw: &RawGraph, queries: &[(String, PatternQuery)]) {
    let graph = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let serial = GfClEngine::with_options(graph.clone(), ExecOptions::serial());
    let parallel = GfClEngine::with_options(graph, ExecOptions::with_threads(par_threads()));
    for (name, q) in queries {
        let s =
            serial.execute(q).unwrap_or_else(|e| panic!("{name} failed serial: {e}")).canonical();
        let p = parallel
            .execute(q)
            .unwrap_or_else(|e| panic!("{name} failed parallel: {e}"))
            .canonical();
        assert_eq!(s, p, "{name}: threads=1 vs threads={}", par_threads());
    }
}

#[test]
fn ldbc_queries_agree() {
    let persons = 120;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    assert_serial_parallel_agree(&raw, &ldbc::all_queries(&params));
}

#[test]
fn job_queries_agree() {
    let raw = gfcl_datagen::generate_movies(MovieParams::scale(150));
    assert_serial_parallel_agree(&raw, &job::all_queries());
}

#[test]
fn khop_queries_agree() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 3000,
        avg_degree: 5.0,
        exponent: 1.8,
        seed: 17,
    });
    let mut queries = Vec::new();
    for hops in 1..=3 {
        for (mode_name, mode) in [
            ("count", KhopMode::CountStar),
            ("filter", KhopMode::LastEdgeGt(1_400_000_000)),
            ("chain", KhopMode::Chain(1_350_000_000)),
        ] {
            for backward in [false, true] {
                queries.push((
                    format!("khop-{hops}-{mode_name}-bwd={backward}"),
                    khop("NODE", "LINK", "ts", hops, mode, backward),
                ));
            }
        }
    }
    assert_serial_parallel_agree(&raw, &queries);
}

// ---- Randomized graphs ----

/// A random single-pair-of-labels graph exercising n-n and n-1 edges.
#[derive(Debug, Clone)]
struct RandomGraph {
    n_a: usize,
    n_b: usize,
    ab: Vec<(u64, u64, i64)>,
    single: Vec<Option<(u64, i64)>>,
    a_props: Vec<Option<i64>>,
    b_props: Vec<Option<i64>>,
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (2usize..40, 2usize..40)
        .prop_flat_map(|(n_a, n_b)| {
            let ab = proptest::collection::vec((0..n_a as u64, 0..n_b as u64, -30i64..30), 0..120);
            let single =
                proptest::collection::vec(proptest::option::of((0..n_b as u64, -30i64..30)), n_a);
            let a_props =
                proptest::collection::vec(proptest::option::weighted(0.85, -50i64..50), n_a);
            let b_props =
                proptest::collection::vec(proptest::option::weighted(0.85, -50i64..50), n_b);
            (Just(n_a), Just(n_b), ab, single, a_props, b_props)
        })
        .prop_map(|(n_a, n_b, ab, single, a_props, b_props)| RandomGraph {
            n_a,
            n_b,
            ab,
            single,
            a_props,
            b_props,
        })
}

fn to_raw(g: &RandomGraph) -> RawGraph {
    let mut cat = Catalog::new();
    let a = cat
        .add_vertex_label("A", vec![PropertyDef::new("x", gfcl_common::DataType::Int64)])
        .unwrap();
    let b = cat
        .add_vertex_label("B", vec![PropertyDef::new("y", gfcl_common::DataType::Int64)])
        .unwrap();
    let ab = cat
        .add_edge_label(
            "AB",
            a,
            b,
            Cardinality::ManyMany,
            vec![PropertyDef::new("w", gfcl_common::DataType::Int64)],
        )
        .unwrap();
    let sg = cat
        .add_edge_label(
            "SINGLE",
            a,
            b,
            Cardinality::ManyOne,
            vec![PropertyDef::new("w", gfcl_common::DataType::Int64)],
        )
        .unwrap();
    let mut raw = RawGraph::new(cat);
    raw.vertices[a as usize].count = g.n_a;
    for v in &g.a_props {
        match v {
            Some(x) => raw.vertices[a as usize].props[0].push_i64(*x),
            None => raw.vertices[a as usize].props[0].push_null(),
        }
    }
    raw.vertices[b as usize].count = g.n_b;
    for v in &g.b_props {
        match v {
            Some(y) => raw.vertices[b as usize].props[0].push_i64(*y),
            None => raw.vertices[b as usize].props[0].push_null(),
        }
    }
    for &(s, d, w) in &g.ab {
        let t = &mut raw.edges[ab as usize];
        t.src.push(s);
        t.dst.push(d);
        t.props[0].push_i64(w);
    }
    for (s, e) in g.single.iter().enumerate() {
        if let Some((d, w)) = e {
            let t = &mut raw.edges[sg as usize];
            t.src.push(s as u64);
            t.dst.push(*d);
            t.props[0].push_i64(*w);
        }
    }
    raw.validate().unwrap();
    raw
}

fn random_queries(t: i64) -> Vec<(String, PatternQuery)> {
    let count = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .filter(gt(col("e", "w"), lit(t)))
        .returns_count()
        .build();
    let rows = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .filter(ge(col("a", "x"), lit(t)))
        .returns(&[("a", "x"), ("b", "y")])
        .build();
    let single = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("s", "SINGLE", "a", "b")
        .filter(lt(col("s", "w"), lit(t)))
        .returns_sum("a", "x")
        .build();
    let agg = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .returns_min("e", "w")
        .build();
    vec![
        ("count".into(), count),
        ("rows".into(), rows),
        ("single-sum".into(), single),
        ("min".into(), agg),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn parallel_agrees_on_random_graphs(g in graph_strategy(), t in -30i64..30) {
        let raw = to_raw(&g);
        assert_serial_parallel_agree(&raw, &random_queries(t));
    }
}

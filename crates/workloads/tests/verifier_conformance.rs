//! Verifier conformance: the structural plan verifier must accept every
//! plan the optimizer emits — across all workload suites (LDBC IS/IC,
//! grouped-aggregate, JOB, k-hop) and across randomized pattern queries.
//!
//! This is the acceptance side of the contract whose rejection side lives
//! in `crates/core/tests/verify_mutations.rs`: together they pin the
//! verifier as exactly as strict as the executor requires — every emitted
//! plan passes, every seeded corruption fails.

use gfcl_core::query::lit;
use gfcl_core::query::{col, ge, gt, lt, Agg, PatternQuery, QueryBuilder};
use gfcl_core::{plan_query, render_explain, verify_plan};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
use gfcl_workloads::ldbc::{self, LdbcParams};
use gfcl_workloads::{grouped, job, khop, KhopMode};
use proptest::prelude::*;

/// Plan every query against `raw`'s catalog and assert the verifier
/// accepts the result (and that EXPLAIN agrees).
fn assert_all_verify(raw: &RawGraph, queries: &[(String, PatternQuery)]) {
    let graph = ColumnarGraph::build(raw, StorageConfig::default()).unwrap();
    let cat = graph.catalog();
    for (name, q) in queries {
        let plan = plan_query(q, cat).unwrap_or_else(|e| panic!("{name}: failed to plan: {e}"));
        let report = verify_plan(&plan, cat)
            .unwrap_or_else(|e| panic!("{name}: optimizer-emitted plan rejected: {e}"));
        assert!(report.checks > 0, "{name}: verifier evaluated no checks");
        let explain = render_explain(&plan, cat);
        assert!(
            explain.contains("verified:") && !explain.contains("NOT VERIFIED"),
            "{name}: EXPLAIN disagrees with verify_plan:\n{explain}"
        );
    }
}

#[test]
fn ldbc_and_grouped_plans_verify() {
    let persons = 60;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    assert_all_verify(&raw, &ldbc::all_queries(&params));
    assert_all_verify(&raw, &grouped::ga_queries(&params));
}

#[test]
fn job_plans_verify() {
    let raw = gfcl_datagen::generate_movies(MovieParams::scale(60));
    assert_all_verify(&raw, &job::all_queries());
}

#[test]
fn khop_plans_verify() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 600,
        avg_degree: 4.0,
        exponent: 1.8,
        seed: 11,
    });
    let mut queries = Vec::new();
    for hops in 1..=3 {
        for (mode_name, mode) in
            [("count", KhopMode::CountStar), ("chain", KhopMode::Chain(1_350_000_000))]
        {
            for backward in [false, true] {
                queries.push((
                    format!("khop-{hops}-{mode_name}-bwd={backward}"),
                    khop("NODE", "LINK", "ts", hops, mode, backward),
                ));
            }
        }
    }
    assert_all_verify(&raw, &queries);
}

/// One randomized chain query over the example graph: `hops` FOLLOWS
/// extends from a chosen start, an age predicate at a chosen node, and one
/// of five return shapes.
fn random_chain(hops: usize, thr: i64, fnode: usize, start: usize, ret: usize) -> PatternQuery {
    let name = |i: usize| format!("n{i}");
    let mut b = QueryBuilder::default();
    for i in 0..=hops {
        b = b.node(&name(i), "PERSON");
    }
    for i in 0..hops {
        b = b.edge(&format!("e{i}"), "FOLLOWS", &name(i), &name(i + 1));
    }
    let cmp = match thr.rem_euclid(3) {
        0 => gt(col(&name(fnode), "age"), lit(thr)),
        1 => ge(col(&name(fnode), "age"), lit(thr)),
        _ => lt(col(&name(fnode), "age"), lit(thr)),
    };
    b = b.filter(cmp).start_at(&name(start));
    match ret {
        0 => b.returns_count().build(),
        1 => b.returns(&[(&name(0), "name"), (&name(hops), "name")]).build(),
        2 => b.returns_sum(&name(hops), "age").build(),
        3 => b.returns_min(&name(0), "age").build(),
        _ => b
            .group_by(&[(&name(0), "name")])
            .returns_agg(vec![Agg::count_star(), Agg::max(&name(hops), "age")])
            .build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_chain_plans_verify(
        hops in 1usize..=3,
        thr in -10i64..90,
        fnode_raw in 0usize..4,
        start_raw in 0usize..4,
        ret in 0usize..5,
    ) {
        let graph =
            ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap();
        let cat = graph.catalog();
        let q = random_chain(hops, thr, fnode_raw % (hops + 1), start_raw % (hops + 1), ret);
        let plan = plan_query(&q, cat).expect("chain query plans");
        let report = verify_plan(&plan, cat).expect("optimizer-emitted plan rejected");
        prop_assert!(report.checks > 0);
    }
}

//! The text-query corpus harness: every workload query's `.gql` file is
//! parsed, bound against the generated catalog, and checked three ways:
//!
//! 1. **Structural parity** — the bound [`PatternQuery`] must be `==` to
//!    its hand-built `QueryBuilder` twin (node order, edge order,
//!    predicate order, return shape, hints — everything).
//! 2. **Execution equivalence** — the text-compiled query must produce
//!    the same canonical result as the twin on GF-CL at 1 and 4 workers,
//!    GF-CV, GF-RV, and the relational baseline.
//! 3. **Golden snapshots** — the EXPLAIN rendering and a result digest
//!    for every query are pinned under `tests/snapshots/corpus-*.txt`.
//!
//! To regenerate snapshots after an intentional change:
//!
//! ```sh
//! GFCL_BLESS=1 cargo test -p gfcl_workloads --test text_corpus
//! ```

use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RawGraph, RowGraph, StorageConfig};
use gfcl_workloads::corpus::{self, CorpusEntry};
use gfcl_workloads::LdbcParams;

fn assert_snapshot(file: &str, actual: &str) {
    let path = format!("{}/tests/snapshots/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("GFCL_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read snapshot {path}: {e}; run with GFCL_BLESS=1 to create it")
    });
    if expected != actual {
        let diverge = expected
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
        panic!(
            "corpus snapshot {file} changed at line {}: \n  expected: {:?}\n  actual:   {:?}\n\
             If intentional, re-bless with GFCL_BLESS=1 and review the diff.",
            diverge + 1,
            expected.lines().nth(diverge).unwrap_or(""),
            actual.lines().nth(diverge).unwrap_or(""),
        );
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Short canonical outputs are pinned verbatim; long ones by length+hash so
/// the snapshot files stay reviewable.
fn digest(canonical: &str) -> String {
    if canonical.len() <= 200 {
        canonical.to_owned()
    } else {
        format!("len={} fnv1a={:016x}", canonical.len(), fnv1a(canonical))
    }
}

/// Compile every text, assert twin parity, run across all engines, and pin
/// EXPLAIN + result digests in `snapshot`.
fn run_suite(snapshot: &str, raw: &RawGraph, entries: &[CorpusEntry]) {
    let colg = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let rowg = Arc::new(RowGraph::build(raw).unwrap());
    let explainer = GfClEngine::new(colg.clone());

    let engines: Vec<(String, Box<dyn Engine>)> = vec![
        ("GF-CL/1".into(), Box::new(GfClEngine::with_options(colg.clone(), ExecOptions::serial()))),
        (
            "GF-CL/4".into(),
            Box::new(GfClEngine::with_options(colg.clone(), ExecOptions::with_threads(4))),
        ),
        ("GF-CV".into(), Box::new(GfCvEngine::new(colg.clone()))),
        ("GF-RV".into(), Box::new(GfRvEngine::new(rowg))),
        ("REL".into(), Box::new(RelEngine::new(colg))),
    ];

    let mut golden = String::new();
    for e in entries {
        let bound = gfcl_frontend::compile(&e.text, explainer.catalog())
            .unwrap_or_else(|err| panic!("{}: text query failed to compile:\n{err}", e.name));
        assert_eq!(bound, e.twin, "{}: bound text query differs from its builder twin", e.name);

        // The twin on the reference engine sets the expectation; the
        // text-compiled query must match it on every engine.
        let reference = engines[0]
            .1
            .execute(&e.twin)
            .unwrap_or_else(|err| panic!("{}: twin failed on {}: {err}", e.name, engines[0].0))
            .canonical();
        for (ename, engine) in &engines {
            let out = engine
                .execute(&bound)
                .unwrap_or_else(|err| panic!("{}: text failed on {ename}: {err}", e.name))
                .canonical();
            assert_eq!(out, reference, "{}: {ename} (text) vs {} (twin)", e.name, engines[0].0);
        }

        golden.push_str(&format!("== {} ==\n", e.name));
        golden.push_str(
            &explainer
                .explain(&bound)
                .unwrap_or_else(|err| panic!("{}: failed to explain: {err}", e.name)),
        );
        golden.push_str(&format!("result: {}\n\n", digest(&reference)));
    }
    assert_snapshot(snapshot, &golden);
}

#[test]
fn ldbc_text_corpus() {
    let persons = 80;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    run_suite("corpus-ldbc.txt", &raw, &corpus::ldbc_corpus(&params));
}

#[test]
fn ga_text_corpus() {
    let persons = 80;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    run_suite("corpus-ga.txt", &raw, &corpus::ga_corpus(&params));
}

#[test]
fn job_text_corpus() {
    let raw = gfcl_datagen::generate_movies(MovieParams::scale(80));
    run_suite("corpus-job.txt", &raw, &corpus::job_corpus());
}

#[test]
fn khop_text_corpus() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 1000,
        avg_degree: 5.0,
        exponent: 1.8,
        seed: 7,
    });
    run_suite("corpus-khop.txt", &raw, &corpus::khop_corpus());
}

//! Store-level WAL corruption matrix: take a healthy on-disk store with a
//! populated WAL, damage the log in every way a disk or a crash can —
//! single-bit flips at every region of the file, truncation to every
//! prefix length, a duplicated tail record — and reopen.
//!
//! The contract (`GFCL_VERIFY=strict` in CI): [`GraphStore::open`] either
//!
//! * recovers a **commit-boundary prefix** of the stream (damage confined
//!   to the torn-write window at the tail), answering queries exactly
//!   like a reference store that replayed that many commits, or
//! * fails with a clean [`Error::Storage`] —
//!
//! and never panics, and never serves a state that is not a prefix.

use std::path::{Path, PathBuf};

use gfcl_common::Error;
use gfcl_core::query::QueryBuilder;
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_storage::{GraphStore, GraphView, StorageConfig};
use gfcl_workloads::crashkit::{self, pk_of};

const COMMITS: u64 = 10;

/// Build the pristine fixture once: a durable store with `COMMITS`
/// commits in its WAL (no merges, so the log stays populated).
fn pristine(root: &Path) -> (PathBuf, Vec<String>) {
    let dir = root.join("pristine");
    let _ = std::fs::remove_dir_all(&dir);
    let store = GraphStore::create(&dir, &crashkit::base_raw(), StorageConfig::default()).unwrap();
    for k in 0..COMMITS {
        crashkit::apply_commit(&store, k).unwrap();
    }
    let expected: Vec<String> =
        (0..=COMMITS).map(|m| reference_answers(&crashkit::reference_store(m))).collect();
    (dir, expected)
}

/// One canonical answer string summarizing the store's state.
fn reference_answers(store: &GraphStore) -> String {
    let q = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .returns(&[("a", "id"), ("a", "x"), ("a", "tag"), ("b", "id"), ("e", "w")])
        .build();
    let snap = store.snapshot();
    GfClEngine::with_snapshot_options(&snap, ExecOptions::serial())
        .execute(&q)
        .expect("state query")
        .canonical()
}

/// Clone the pristine store directory for one corruption experiment.
fn clone_store(pristine: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for f in ["graph.gfcl", "graph.wal"] {
        std::fs::copy(pristine.join(f), dst.join(f)).unwrap();
    }
}

/// Reopen a damaged store and enforce the contract. `label` identifies
/// the experiment in failure messages.
fn check_recovery(dir: &Path, expected: &[String], label: &str) {
    match GraphStore::open(dir, StorageConfig::default()) {
        Err(Error::Storage(_)) => {} // clean, typed rejection
        Err(e) => panic!("{label}: reopen failed with non-storage error: {e}"),
        Ok(store) => {
            let snap = store.snapshot();
            let view = GraphView::new(snap.base(), Some(snap.delta()));
            let mut m = 0u64;
            while view.lookup_pk(0, pk_of(m)).is_some() {
                m += 1;
            }
            assert!(m <= COMMITS, "{label}: recovered more commits than were written");
            for k in m..COMMITS {
                assert!(
                    view.lookup_pk(0, pk_of(k)).is_none(),
                    "{label}: recovered state is not a commit prefix (gap before {k})",
                );
            }
            drop(snap);
            assert_eq!(
                reference_answers(&store),
                expected[m as usize],
                "{label}: recovered prefix {m} does not match its replayed reference",
            );
        }
    }
}

#[test]
fn bit_flips_truncations_and_duplicate_tails_never_panic() {
    let root = std::env::temp_dir().join(format!("gfcl_wal_corruption_{}", std::process::id()));
    let (pristine_dir, expected) = pristine(&root);
    let wal = std::fs::read(pristine_dir.join("graph.wal")).unwrap();
    let work = root.join("work");

    // Single-bit flips spread across the whole file: header, record
    // frames, payloads, and the final record (the only region where a
    // flip may legally read as a torn tail).
    let step = (wal.len() / 97).max(1);
    for pos in (0..wal.len()).step_by(step) {
        for bit in [0u8, 5] {
            clone_store(&pristine_dir, &work);
            let mut bytes = wal.clone();
            bytes[pos] ^= 1 << bit;
            std::fs::write(work.join("graph.wal"), &bytes).unwrap();
            check_recovery(&work, &expected, &format!("bit-flip @{pos} bit {bit}"));
        }
    }

    // Truncation to every length on a coarse grid plus the exact tail.
    let tstep = (wal.len() / 61).max(1);
    let mut cuts: Vec<usize> = (0..wal.len()).step_by(tstep).collect();
    cuts.extend([0, 1, wal.len().saturating_sub(1), wal.len().saturating_sub(7)]);
    for cut in cuts {
        clone_store(&pristine_dir, &work);
        std::fs::write(work.join("graph.wal"), &wal[..cut]).unwrap();
        check_recovery(&work, &expected, &format!("truncate to {cut}"));
    }

    // Duplicated tails: re-append the last `n` bytes, covering both a
    // whole duplicated record and ragged partial copies.
    for n in [1usize, 8, 16, 64, 256] {
        let n = n.min(wal.len());
        clone_store(&pristine_dir, &work);
        let mut bytes = wal.clone();
        bytes.extend_from_slice(&wal[wal.len() - n..]);
        std::fs::write(work.join("graph.wal"), &bytes).unwrap();
        check_recovery(&work, &expected, &format!("duplicate last {n} bytes"));
    }

    // A missing WAL must refuse to open: silently treating it as an
    // empty (epoch-0) store would drop every acknowledged commit.
    clone_store(&pristine_dir, &work);
    std::fs::remove_file(work.join("graph.wal")).unwrap();
    match GraphStore::open(&work, StorageConfig::default()) {
        Err(Error::Storage(msg)) => assert!(msg.contains("graph.wal"), "{msg}"),
        Err(e) => panic!("deleted WAL: wrong error kind {e}"),
        Ok(_) => panic!("deleted WAL opened silently, dropping all commits"),
    }

    let _ = std::fs::remove_dir_all(&root);
}

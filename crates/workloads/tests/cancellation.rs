//! Cooperative cancellation and budget enforcement: a query inside a
//! fault domain either completes with the full, correct result or fails
//! with a clean structured [`Error::Canceled`] — never partial output,
//! never a panic — and a trip never disturbs pinned snapshots or other
//! queries.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use gfcl_common::{CancelReason, Error, Value};
use gfcl_core::query::{col, lit, lt, PatternQuery};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::PowerLawParams;
use gfcl_storage::{ColumnarGraph, GraphStore, RawGraph, StorageConfig};
use proptest::prelude::*;

/// Worker counts under test.
const THREADS: [usize; 2] = [1, 4];

fn khop(hops: usize) -> gfcl_core::query::QueryBuilder {
    let mut b = PatternQuery::builder();
    for i in 0..=hops {
        b = b.node(&format!("v{i}"), "NODE");
    }
    for i in 0..hops {
        b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
    }
    b
}

/// A graph big enough that the long query below runs for milliseconds —
/// room for a mid-flight cancel — shared across tests and proptest cases.
fn big_graph() -> Arc<ColumnarGraph> {
    static GRAPH: OnceLock<Arc<ColumnarGraph>> = OnceLock::new();
    Arc::clone(GRAPH.get_or_init(|| {
        let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
            nodes: 20_000,
            avg_degree: 6.0,
            exponent: 1.8,
            seed: 29,
        });
        Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap())
    }))
}

/// The long-running query: a two-hop count whose intermediate list is far
/// larger than the vertex set.
fn long_query() -> PatternQuery {
    khop(2).returns_count().build()
}

fn reference_count() -> u64 {
    static REF: OnceLock<u64> = OnceLock::new();
    *REF.get_or_init(|| {
        let engine = GfClEngine::with_options(big_graph(), ExecOptions::serial());
        engine.execute(&long_query()).unwrap().as_count().unwrap()
    })
}

#[test]
fn pre_canceled_handle_rejects_until_reset() {
    let engine = GfClEngine::with_options(big_graph(), ExecOptions::serial());
    let q = khop(0).returns_count().build();
    let handle = engine.cancel_handle().expect("GF-CL supports cancellation");

    handle.cancel(CancelReason::User);
    match engine.execute(&q) {
        Err(Error::Canceled { reason: CancelReason::User, .. }) => {}
        other => panic!("expected a user-canceled query, got {other:?}"),
    }
    // The trip sticks across queries until explicitly re-armed.
    assert!(engine.execute(&q).is_err());
    handle.reset();
    assert_eq!(engine.execute(&q).unwrap().as_count(), Some(20_000));
}

#[test]
fn time_limit_trips_with_timeout_reason() {
    for threads in THREADS {
        let opts = ExecOptions::with_threads(threads).time_limit_ms(1);
        let engine = GfClEngine::with_options(big_graph(), opts);
        match engine.execute(&long_query()) {
            Err(Error::Canceled { reason: CancelReason::Timeout, elapsed_ms, .. }) => {
                assert!(elapsed_ms >= 1, "elapsed {elapsed_ms}ms below the 1ms limit");
            }
            other => panic!("threads={threads}: expected a timeout, got {other:?}"),
        }
    }
}

#[test]
fn memory_limit_trips_with_memory_reason() {
    // Materializing 20k id rows costs far more than 4 KiB, so the row
    // sink's accounting must trip the token long before completion.
    let q = khop(0).returns(&[("v0", "id")]).build();
    for threads in THREADS {
        let opts = ExecOptions::with_threads(threads).mem_limit_bytes(4096);
        let engine = GfClEngine::with_options(big_graph(), opts);
        match engine.execute(&q) {
            Err(Error::Canceled { reason: CancelReason::Memory, peak_bytes, .. }) => {
                assert!(peak_bytes >= 4096, "peak {peak_bytes} below the tripped limit");
            }
            other => panic!("threads={threads}: expected a memory trip, got {other:?}"),
        }
    }
    // The same query inside a generous budget completes.
    let opts = ExecOptions::serial().mem_limit_bytes(64 * 1024 * 1024);
    let engine = GfClEngine::with_options(big_graph(), opts);
    assert_eq!(engine.execute(&q).unwrap().cardinality(), 20_000);
}

#[test]
fn grouped_and_topk_sinks_are_accounted() {
    // Budget enforcement must also see GroupTable / top-k / distinct
    // growth, not just plain row sinks.
    let grouped = khop(1)
        .group_by(&[("v0", "id")])
        .returns_agg(vec![gfcl_core::query::Agg::count_star()])
        .build();
    let engine = GfClEngine::with_options(big_graph(), ExecOptions::serial().mem_limit_bytes(4096));
    match engine.execute(&grouped) {
        Err(Error::Canceled { reason: CancelReason::Memory, .. }) => {}
        other => panic!("expected the group table to trip the budget, got {other:?}"),
    }
}

#[test]
fn canceling_one_engine_does_not_disturb_another() {
    let victim = GfClEngine::with_options(big_graph(), ExecOptions::serial());
    let bystander = GfClEngine::with_options(big_graph(), ExecOptions::serial());
    victim.cancel_handle().unwrap().cancel(CancelReason::User);
    assert!(victim.execute(&long_query()).is_err());
    assert_eq!(bystander.execute(&long_query()).unwrap().as_count(), Some(reference_count()));
}

#[test]
fn cancellation_leaves_pinned_snapshots_intact() {
    // A mutable store with a pinned snapshot: cancel a query mid-design
    // on that snapshot, then verify the snapshot itself and the store's
    // write path are untouched.
    let raw = RawGraph::example();
    let store = GraphStore::in_memory(&raw, StorageConfig::default()).unwrap();
    let mut txn = store.begin_write();
    txn.insert_vertex(
        "PERSON",
        &[
            ("name", Value::String("zoe".into())),
            ("age", Value::Int64(30)),
            ("gender", Value::String("F".into())),
        ],
    )
    .unwrap();
    txn.commit().unwrap();

    let snapshot = store.snapshot();
    let epoch = snapshot.epoch();
    let engine = GfClEngine::with_snapshot_options(&snapshot, ExecOptions::serial());
    let q = PatternQuery::builder().node("a", "PERSON").returns_count().build();
    assert_eq!(engine.execute(&q).unwrap().as_count(), Some(5));

    let handle = engine.cancel_handle().unwrap();
    handle.cancel(CancelReason::User);
    assert!(matches!(engine.execute(&q), Err(Error::Canceled { .. })));

    // The pinned snapshot is unchanged and immediately usable again.
    assert_eq!(snapshot.epoch(), epoch);
    handle.reset();
    assert_eq!(engine.execute(&q).unwrap().as_count(), Some(5));
    // And the store still accepts writes afterwards.
    let mut txn = store.begin_write();
    txn.insert_vertex(
        "PERSON",
        &[
            ("name", Value::String("yan".into())),
            ("age", Value::Int64(41)),
            ("gender", Value::String("M".into())),
        ],
    )
    .unwrap();
    txn.commit().unwrap();
    assert_eq!(store.snapshot().epoch(), epoch + 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Cancel at a random point during execution, at 1 and 4 workers: the
    /// outcome is either the complete correct count or a clean
    /// `Error::Canceled` — never a partial count, never a panic.
    #[test]
    fn random_point_cancellation_is_all_or_nothing(
        delay_us in 0u64..4_000,
        thread_pick in 0usize..THREADS.len(),
    ) {
        let threads = THREADS[thread_pick];
        let engine =
            GfClEngine::with_options(big_graph(), ExecOptions::with_threads(threads));
        let handle = engine.cancel_handle().unwrap();
        let canceler = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us));
                handle.cancel(CancelReason::User);
            })
        };
        let outcome = engine.execute(&long_query());
        canceler.join().unwrap();
        match outcome {
            Ok(out) => prop_assert_eq!(
                out.as_count(),
                Some(reference_count()),
                "a query that outran the cancel must still be complete and correct"
            ),
            Err(Error::Canceled { reason: CancelReason::User, .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error under cancellation: {e:?}"),
        }
    }
}

#[test]
fn filtered_long_query_is_cancelable_too() {
    // A pushed-filter scan exercises the pruned-morsel checkpoint path.
    let q = khop(2).filter(lt(col("v0", "id"), lit(10_000))).returns_count().build();
    let engine = GfClEngine::with_options(big_graph(), ExecOptions::with_threads(4));
    let handle = engine.cancel_handle().unwrap();
    let reference = engine.execute(&q).unwrap();
    handle.cancel(CancelReason::User);
    assert!(matches!(engine.execute(&q), Err(Error::Canceled { .. })));
    handle.reset();
    assert_eq!(engine.execute(&q).unwrap(), reference);
}

//! Grouped-aggregation correctness nets:
//!
//! 1. every GA workload query agrees **byte-for-byte** (not just
//!    canonically) across GF-CL at 1 and 4 workers, GF-CV, GF-RV, and the
//!    relational baseline — grouped and top-k outputs are canonically
//!    ordered, so exact equality is required;
//! 2. a property test: grouped aggregation over random power-law graphs
//!    equals a naive enumerate-then-fold reference (computed in this file
//!    from plain projection rows, independent of the engine's aggregate
//!    machinery), at `threads = 1` and `threads = 4`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_common::Value;
use gfcl_core::query::{col, gt, lit, Agg, PatternQuery, SortDir};
use gfcl_core::{Engine, ExecOptions, GfClEngine, QueryOutput};
use gfcl_datagen::{PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RowGraph, StorageConfig};
use gfcl_workloads::{ga_queries, LdbcParams};
use proptest::prelude::*;

#[test]
fn ga_queries_agree_byte_for_byte_across_engines_and_threads() {
    let persons = 100;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    let colg = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let rowg = Arc::new(RowGraph::build(&raw).unwrap());

    let engines: Vec<(String, Box<dyn Engine>)> = vec![
        ("GF-CL/1".into(), Box::new(GfClEngine::with_options(colg.clone(), ExecOptions::serial()))),
        (
            "GF-CL/4".into(),
            Box::new(GfClEngine::with_options(colg.clone(), ExecOptions::with_threads(4))),
        ),
        ("GF-CV".into(), Box::new(GfCvEngine::new(colg.clone()))),
        ("GF-RV".into(), Box::new(GfRvEngine::new(rowg))),
        ("REL".into(), Box::new(RelEngine::new(colg))),
    ];

    for (qname, q) in ga_queries(&params) {
        let reference = engines[0]
            .1
            .execute(&q)
            .unwrap_or_else(|e| panic!("{qname} failed on {}: {e}", engines[0].0));
        assert!(reference.cardinality() > 0, "{qname} should not be empty");
        for (ename, engine) in &engines[1..] {
            let out =
                engine.execute(&q).unwrap_or_else(|e| panic!("{qname} failed on {ename}: {e}"));
            assert_eq!(out, reference, "{qname}: {ename} vs {}", engines[0].0);
        }
    }
}

// ---- Property test: factorized grouped aggregation vs naive fold ----------

/// The grouped 2-hop under test: per start vertex, aggregate the far edge's
/// timestamp — the far end stays an unflat adjacency view in the LBP.
fn grouped_two_hop(t: i64) -> PatternQuery {
    PatternQuery::builder()
        .node("v0", "NODE")
        .node("v1", "NODE")
        .node("v2", "NODE")
        .edge("e1", "LINK", "v0", "v1")
        .edge("e2", "LINK", "v1", "v2")
        .filter(gt(col("e1", "ts"), lit(t)))
        .group_by(&[("v0", "id")])
        .returns_agg(vec![
            Agg::count_star(),
            Agg::sum("e2", "ts"),
            Agg::min("e2", "ts"),
            Agg::max("e2", "ts"),
            Agg::avg("e2", "ts"),
            Agg::count_distinct("v2", "id"),
        ])
        .build()
}

/// The same matches as flat rows, for the naive reference fold.
fn enumerated_two_hop(t: i64) -> PatternQuery {
    PatternQuery::builder()
        .node("v0", "NODE")
        .node("v1", "NODE")
        .node("v2", "NODE")
        .edge("e1", "LINK", "v0", "v1")
        .edge("e2", "LINK", "v1", "v2")
        .filter(gt(col("e1", "ts"), lit(t)))
        .returns(&[("v0", "id"), ("e2", "ts"), ("v2", "id")])
        .build()
}

/// Naive enumerate-then-fold reference, written with plain maps and i64
/// arithmetic — deliberately independent of `gfcl_core::agg`.
fn naive_reference(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    struct Acc {
        count: i64,
        sum: i64,
        min: Option<i64>,
        max: Option<i64>,
        distinct: BTreeSet<i64>,
    }
    let mut groups: BTreeMap<i64, Acc> = BTreeMap::new();
    for r in rows {
        let key = r[0].as_i64().expect("id is non-null");
        let ts = r[1].as_i64().expect("ts is non-null");
        let far = r[2].as_i64().expect("id is non-null");
        let acc = groups.entry(key).or_insert(Acc {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            distinct: BTreeSet::new(),
        });
        acc.count += 1;
        acc.sum += ts;
        acc.min = Some(acc.min.map_or(ts, |m| m.min(ts)));
        acc.max = Some(acc.max.map_or(ts, |m| m.max(ts)));
        acc.distinct.insert(far);
    }
    groups
        .into_iter()
        .map(|(k, a)| {
            vec![
                Value::Int64(k),
                Value::Int64(a.count),
                Value::Int64(a.sum),
                a.min.map_or(Value::Null, Value::Date),
                a.max.map_or(Value::Null, Value::Date),
                Value::Float64(a.sum as f64 / a.count as f64),
                Value::Int64(a.distinct.len() as i64),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn grouped_aggregation_matches_naive_fold_on_random_powerlaw_graphs(
        nodes in 30usize..150,
        avg_degree in 1.0f64..5.0,
        exponent in 1.4f64..2.4,
        seed in 0u64..1_000,
        t in 1_300_000_000i64..1_500_000_000,
    ) {
        let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
            nodes, avg_degree, exponent, seed,
        });
        let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
        let serial = GfClEngine::with_options(graph.clone(), ExecOptions::serial());

        let flat = serial.execute(&enumerated_two_hop(t)).unwrap();
        let QueryOutput::Rows { rows, .. } = flat else { panic!("rows expected") };
        let expected = naive_reference(&rows);

        for threads in [1usize, 4] {
            let engine =
                GfClEngine::with_options(graph.clone(), ExecOptions::with_threads(threads));
            let out = engine.execute(&grouped_two_hop(t)).unwrap();
            let QueryOutput::Rows { rows: got, .. } = out else { panic!("rows expected") };
            prop_assert_eq!(&got, &expected, "threads={}", threads);
        }
    }

    /// Top-k over the same random graphs: the engine's ordered/limited
    /// output equals sorting + truncating the enumerated rows.
    #[test]
    fn top_k_matches_naive_sort_on_random_powerlaw_graphs(
        nodes in 30usize..120,
        seed in 0u64..1_000,
        k in 1usize..20,
    ) {
        let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
            nodes, avg_degree: 3.0, exponent: 1.8, seed,
        });
        let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
        let q = PatternQuery::builder()
            .node("v0", "NODE")
            .node("v1", "NODE")
            .edge("e1", "LINK", "v0", "v1")
            .returns(&[("v0", "id"), ("e1", "ts")])
            .order_by(1, SortDir::Desc)
            .limit(k)
            .build();
        let plain = {
            let mut p = q.clone();
            p.order_by.clear();
            p.limit = None;
            p
        };
        let serial = GfClEngine::with_options(graph.clone(), ExecOptions::serial());
        let QueryOutput::Rows { rows: mut all, .. } = serial.execute(&plain).unwrap() else {
            panic!("rows expected")
        };
        // Naive: sort by ts desc, tie-break on the whole row, take k.
        all.sort_by(|a, b| {
            let ta = a[1].as_i64().unwrap();
            let tb = b[1].as_i64().unwrap();
            tb.cmp(&ta).then(a[0].as_i64().unwrap().cmp(&b[0].as_i64().unwrap()))
        });
        all.truncate(k);
        for threads in [1usize, 4] {
            let engine =
                GfClEngine::with_options(graph.clone(), ExecOptions::with_threads(threads));
            let QueryOutput::Rows { rows: got, .. } = engine.execute(&q).unwrap() else {
                panic!("rows expected")
            };
            prop_assert_eq!(&got, &all, "threads={}", threads);
        }
    }
}

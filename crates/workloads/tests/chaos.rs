//! The fault-injection chaos tier: every injected storage fault must
//! yield either a *correct* (retried) result or a *clean per-query error*
//! — never a panic, never a wrong answer.
//!
//! A deterministic graph is saved and reopened through a tiny buffer pool
//! wrapped in [`FailingStore`], so every query faults pages constantly
//! and every fault flavor (transient read errors, permanent read errors,
//! one-shot checksum bit-flips, sticky bit-flips) hits the pool's
//! retry-then-propagate path. The seed comes from `GFCL_FAULT_SEED` when
//! the CI chaos job sets it and is printed in every assertion, so a
//! failing run reproduces with `GFCL_FAULT_SEED=<seed> cargo test --test
//! chaos`.
//!
//! WAL append (fsync-path) failures are injected separately through
//! [`GraphStore::inject_wal_append_failure`] against the crashkit
//! fixture: a failed commit must surface as a clean error, leave the
//! published snapshot untouched, and not poison later commits.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_common::Error;
use gfcl_core::query::{col, ge, lit, lt, Agg, PatternQuery};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::PowerLawParams;
use gfcl_storage::{ColumnarGraph, FaultConfig, GraphStore, RawGraph, RowGraph, StorageConfig};
use gfcl_workloads::crashkit;

/// Worker counts under test (the chaos CI job also re-runs the whole
/// binary with `GFCL_THREADS=4`, which `ExecOptions::from_env`-built
/// engines pick up on top of this explicit matrix).
const THREADS: [usize; 2] = [1, 4];

/// A pool this small evicts constantly, so faults fire on re-reads too.
const TINY_POOL_PAGES: usize = 2;

const NODES: usize = 400;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gfcl_chaos_{}_{name}.gfcl", std::process::id()))
}

/// The run's base seed: `GFCL_FAULT_SEED` when the chaos job sets it,
/// a fixed default otherwise. Printed in every failure message.
fn base_seed() -> u64 {
    match std::env::var("GFCL_FAULT_SEED") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            panic!("GFCL_FAULT_SEED must be an integer, got {s:?}");
        }),
        Err(_) => 0xC0FFEE,
    }
}

fn queries(n: i64) -> Vec<(String, PatternQuery)> {
    let khop = |hops: usize| {
        let mut b = PatternQuery::builder();
        for i in 0..=hops {
            b = b.node(&format!("v{i}"), "NODE");
        }
        for i in 0..hops {
            b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
        }
        b
    };
    vec![
        (
            "scan".into(),
            khop(0).filter(ge(col("v0", "id"), lit(n / 2))).returns(&[("v0", "id")]).build(),
        ),
        (
            "one-hop-props".into(),
            khop(1)
                .filter(lt(col("v0", "id"), lit(n / 6)))
                .returns(&[("v0", "id"), ("e1", "ts")])
                .build(),
        ),
        ("two-hop-count".into(), khop(2).returns_count().build()),
        (
            "grouped".into(),
            khop(1)
                .filter(lt(col("v0", "id"), lit(n / 5)))
                .group_by(&[("v0", "id")])
                .returns_agg(vec![Agg::count_star()])
                .build(),
        ),
    ]
}

fn build_raw() -> RawGraph {
    gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: NODES,
        avg_degree: 3.0,
        exponent: 1.8,
        seed: 17,
    })
}

/// Engines over a (possibly fault-injected) columnar graph. GF-RV is
/// fully resident so it cannot observe page faults; it rides along so the
/// contract is checked uniformly across all four engines.
fn engines(g: &Arc<ColumnarGraph>, rows: &Arc<RowGraph>) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(GfClEngine::new(Arc::clone(g))),
        Box::new(GfCvEngine::new(Arc::clone(g))),
        Box::new(RelEngine::new(Arc::clone(g))),
        Box::new(GfRvEngine::new(Arc::clone(rows))),
    ]
}

/// One query execution under chaos. Returns `Ok(canonical)` or the clean
/// error; a panic or a wrong answer fails the test with the seed.
fn run_checked(
    engine: &dyn Engine,
    qname: &str,
    q: &PatternQuery,
    threads: usize,
    reference: &str,
    cfg: &FaultConfig,
) -> std::result::Result<(), Error> {
    let opts = ExecOptions::with_threads(threads);
    let outcome = catch_unwind(AssertUnwindSafe(|| engine.execute_with(q, &opts)));
    let ctx = format!(
        "seed={} cfg={cfg:?} query={qname} engine={} threads={threads}",
        cfg.seed,
        engine.name()
    );
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!("{ctx}: PANICKED under fault injection: {msg}");
        }
        Ok(Ok(out)) => {
            assert_eq!(
                out.canonical(),
                reference,
                "{ctx}: WRONG ANSWER under fault injection (an injected fault must \
                 surface as an error, never as silently different output)"
            );
            Ok(())
        }
        Ok(Err(e)) => {
            assert!(
                matches!(e, Error::Storage(_) | Error::Canceled { .. }),
                "{ctx}: fault surfaced as an unexpected error kind: {e:?}"
            );
            Err(e)
        }
    }
}

/// Run the full engine × thread × query matrix against a graph reopened
/// with `cfg`. Returns `(ok_runs, err_runs)`.
fn chaos_matrix(cfg: FaultConfig) -> (usize, usize) {
    let raw = build_raw();
    let built = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let rows = Arc::new(RowGraph::build(&raw).unwrap());
    let path = tmp(&format!("matrix_{}_{}", cfg.seed, cfg.transient_ppm));
    built.save(&path).unwrap();
    let config = StorageConfig { buffer_pool_pages: TINY_POOL_PAGES, ..StorageConfig::default() };
    let faulty = Arc::new(ColumnarGraph::open_with_faults(&path, config, Some(cfg)).unwrap());
    std::fs::remove_file(&path).ok();

    // Reference answers from the clean in-memory build.
    let qs = queries(NODES as i64);
    let clean = engines(&built, &rows);
    let refs: Vec<String> =
        qs.iter().map(|(_, q)| clean[0].execute(q).unwrap().canonical()).collect();

    let under_test = engines(&faulty, &rows);
    let (mut ok, mut err) = (0, 0);
    for (qi, (qname, q)) in qs.iter().enumerate() {
        for engine in &under_test {
            for threads in THREADS {
                match run_checked(engine.as_ref(), qname, q, threads, &refs[qi], &cfg) {
                    Ok(()) => ok += 1,
                    Err(_) => err += 1,
                }
            }
        }
    }
    // GF-RV never touches the pool, so its runs must all have succeeded;
    // implied by run_checked (resident execution can't see a fault), but
    // the matrix as a whole must therefore always contain successes.
    assert!(ok > 0, "seed={}: even the resident engine produced no result", cfg.seed);
    (ok, err)
}

#[test]
fn transient_faults_always_heal_within_the_retry_budget() {
    // Transient errors force at most 2 consecutive failures and the pool
    // retries 3 times, so even an extreme rate must never surface: every
    // query completes with the correct answer.
    let cfg = FaultConfig { seed: base_seed(), transient_ppm: 200_000, ..FaultConfig::disabled() };
    let (ok, err) = chaos_matrix(cfg);
    assert_eq!(err, 0, "seed={}: a transient-only fault stream surfaced an error", cfg.seed);
    assert!(ok > 0);
}

#[test]
fn permanent_faults_fail_queries_cleanly() {
    // 12% of page reads poison the page forever: with a 2-page pool over
    // a ~1500-node graph, essentially every paged query trips. The
    // contract (checked per run): correct result or clean Error::Storage.
    let cfg =
        FaultConfig { seed: base_seed() ^ 1, permanent_ppm: 120_000, ..FaultConfig::disabled() };
    let (_ok, err) = chaos_matrix(cfg);
    assert!(err > 0, "seed={}: permanent faults at 12% never surfaced — injector dead?", cfg.seed);
}

#[test]
fn one_shot_bit_flips_are_detected_or_healed() {
    // A flipped bit below the checksum is always *detected*; the retry
    // serves clean bytes. Two independent flip rolls within one page's
    // retry window can still exhaust the budget, which must then surface
    // as a clean storage error, so both outcomes are legal here.
    let cfg = FaultConfig { seed: base_seed() ^ 2, flip_ppm: 150_000, ..FaultConfig::disabled() };
    let (ok, _err) = chaos_matrix(cfg);
    assert!(ok > 0, "seed={}: no query survived one-shot flips", cfg.seed);
}

#[test]
fn sticky_bit_flips_surface_as_storage_errors() {
    // A sticky flip re-corrupts the same bit on every read — retries
    // cannot heal it, so queries touching the page must error cleanly.
    let cfg =
        FaultConfig { seed: base_seed() ^ 3, sticky_flip_ppm: 60_000, ..FaultConfig::disabled() };
    let (_ok, err) = chaos_matrix(cfg);
    assert!(err > 0, "seed={}: sticky corruption at 6% never surfaced", cfg.seed);
}

#[test]
fn mixed_fault_storm_never_panics_or_lies() {
    let cfg = FaultConfig {
        seed: base_seed() ^ 4,
        transient_ppm: 100_000,
        permanent_ppm: 20_000,
        flip_ppm: 50_000,
        sticky_flip_ppm: 20_000,
    };
    let (ok, err) = chaos_matrix(cfg);
    // The storm is heavy enough that both outcomes appear.
    assert!(ok > 0, "seed={}: nothing survived the mixed storm", cfg.seed);
    assert!(err > 0, "seed={}: the mixed storm injected nothing", cfg.seed);
}

#[test]
fn faulty_graph_coexists_with_healthy_graph_in_one_process() {
    // Fault containment across queries: a query that dies on a poisoned
    // page must not take down queries on a healthy pool in the same
    // process — the exact property the ROADMAP's query service needs.
    let raw = build_raw();
    let built = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let path = tmp("coexist");
    built.save(&path).unwrap();
    let config = StorageConfig { buffer_pool_pages: TINY_POOL_PAGES, ..StorageConfig::default() };
    let cfg =
        FaultConfig { seed: base_seed() ^ 5, permanent_ppm: 500_000, ..FaultConfig::disabled() };
    let faulty = Arc::new(ColumnarGraph::open_with_faults(&path, config, Some(cfg)).unwrap());
    let healthy = Arc::new(ColumnarGraph::open(&path, config).unwrap());
    std::fs::remove_file(&path).ok();

    let (qname, q) = &queries(NODES as i64)[1];
    let reference = GfClEngine::new(Arc::clone(&built)).execute(q).unwrap().canonical();

    // Half of all reads fail permanently: this query errors quickly.
    let sick = GfClEngine::new(faulty);
    let seen_err = (0..4).any(|_| sick.execute(q).is_err());
    assert!(seen_err, "seed={}: 50% permanent faults never tripped {qname}", cfg.seed);

    // The healthy pool in the same process is completely unaffected.
    let well = GfClEngine::new(healthy);
    for _ in 0..2 {
        assert_eq!(well.execute(q).unwrap().canonical(), reference);
    }
}

#[test]
fn wal_append_failure_is_a_clean_error_and_does_not_poison_the_store() {
    let dir = std::env::temp_dir().join(format!("gfcl_chaos_wal_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = GraphStore::create(&dir, &crashkit::base_raw(), StorageConfig::default()).unwrap();

    // A durable commit establishes the baseline epoch.
    crashkit::apply_commit(&store, 0).unwrap();
    let epoch_before = store.snapshot().epoch();
    let ops_before = store.pending_mutations();

    // The next WAL append fails mid-record (the fsync path's torn-write
    // shape): the commit must error cleanly and install nothing.
    store.inject_wal_append_failure(10);
    let err = crashkit::apply_commit(&store, 1)
        .expect_err("a commit whose WAL append fails must not report success");
    assert!(matches!(err, Error::Storage(_)), "unexpected error kind: {err:?}");
    let snap = store.snapshot();
    assert_eq!(snap.epoch(), epoch_before, "failed commit published a new epoch");
    assert_eq!(store.pending_mutations(), ops_before, "failed commit installed its delta");
    assert!(
        snap.view().lookup_pk(0, crashkit::pk_of(1)).is_none(),
        "failed commit's vertex is visible"
    );

    // The failed record was rolled back off the log, so the store is not
    // poisoned: the same batch commits durably on retry.
    crashkit::apply_commit(&store, 1).expect("retry after a rolled-back WAL failure");
    assert!(store.snapshot().view().lookup_pk(0, crashkit::pk_of(1)).is_some());
    drop(store);

    // And recovery replays exactly the durable commits.
    let reopened = GraphStore::open(&dir, StorageConfig::default()).unwrap();
    let view = reopened.snapshot();
    let view = view.view();
    assert!(view.lookup_pk(0, crashkit::pk_of(0)).is_some());
    assert!(view.lookup_pk(0, crashkit::pk_of(1)).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_config_round_trips_through_open() {
    // `ColumnarGraph::open` arms the injector from GFCL_FAULT_* itself;
    // the explicit-config seam used by this suite must behave identically
    // to a disabled environment: no faults, identical answers.
    let raw = RawGraph::example();
    let built = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let path = tmp("roundtrip");
    built.save(&path).unwrap();
    let reopened = Arc::new(
        ColumnarGraph::open_with_faults(
            &path,
            StorageConfig::default(),
            Some(FaultConfig::disabled()),
        )
        .unwrap(),
    );
    std::fs::remove_file(&path).ok();
    let q = PatternQuery::builder().node("a", "PERSON").returns_count().build();
    let a = GfClEngine::new(built).execute(&q).unwrap();
    let b = GfClEngine::new(reopened).execute(&q).unwrap();
    assert_eq!(a, b);
}

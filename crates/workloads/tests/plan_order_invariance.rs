//! Plan-order invariance: for every workload query, every *valid* edge
//! permutation forced through `edge_order` hints must produce exactly the
//! canonical result of the optimizer's plan, under both `threads = 1` and
//! `threads = 4`.
//!
//! "Valid" means the planner accepts the order: permutations that are not
//! connected from the chosen start, or that would make a filter span two
//! unflat list groups (which the list-based processor cannot evaluate), are
//! rejected at plan time with `Error::Plan` and skipped here — that
//! rejection path is itself part of what this suite exercises. Patterns
//! with at most 5 edges try all `n!` permutations; larger patterns try 24
//! deterministically sampled ones.

use std::sync::Arc;

use gfcl_common::Error;
use gfcl_core::{Engine, ExecOptions, GfClEngine, PatternQuery};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
use gfcl_workloads::ldbc::{self, LdbcParams};
use gfcl_workloads::{job, khop, KhopMode};

/// All permutations of `0..n` (n ≤ 5 keeps this at ≤ 120).
fn all_perms(n: usize) -> Vec<Vec<usize>> {
    fn rec(cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == used.len() {
            out.push(cur.clone());
            return;
        }
        for i in 0..used.len() {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut vec![false; n], &mut out);
    out
}

/// `k` deterministic Fisher–Yates shuffles of `0..n` from a fixed seed.
fn sampled_perms(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..k)
        .map(|_| {
            let mut p: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                p.swap(i, next() % (i + 1));
            }
            p
        })
        .collect()
}

fn check_invariance(raw: &RawGraph, queries: &[(String, PatternQuery)]) {
    let graph = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let serial = GfClEngine::with_options(Arc::clone(&graph), ExecOptions::serial());
    let parallel = GfClEngine::with_options(graph, ExecOptions::with_threads(4));
    for (qi, (name, q)) in queries.iter().enumerate() {
        let reference = serial
            .execute(q)
            .unwrap_or_else(|e| panic!("{name}: optimizer plan failed: {e}"))
            .canonical();
        let par_ref = parallel.execute(q).unwrap().canonical();
        assert_eq!(reference, par_ref, "{name}: optimizer plan, threads=1 vs threads=4");

        let n = q.edges.len();
        if n == 0 {
            continue;
        }
        let perms =
            if n <= 5 { all_perms(n) } else { sampled_perms(n, 24, 0xC0FFEE ^ (qi as u64)) };
        let mut valid = 0usize;
        for perm in &perms {
            let mut hinted = q.clone();
            hinted.hints.edge_order = Some(perm.clone());
            let out = match serial.execute(&hinted) {
                Ok(o) => o.canonical(),
                // Not connected from the chosen start, or not executable by
                // the LBP — rejected at plan time, by design.
                Err(Error::Plan(_)) => continue,
                Err(e) => panic!("{name} perm {perm:?}: unexpected error {e}"),
            };
            valid += 1;
            assert_eq!(out, reference, "{name} perm {perm:?} (threads=1)");
            let pout = parallel
                .execute(&hinted)
                .unwrap_or_else(|e| panic!("{name} perm {perm:?} parallel: {e}"))
                .canonical();
            assert_eq!(pout, reference, "{name} perm {perm:?} (threads=4)");
        }
        assert!(valid > 0, "{name}: no valid edge permutation out of {}", perms.len());
    }
}

#[test]
fn ldbc_results_are_invariant_under_edge_order() {
    let persons = 60;
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let params = LdbcParams::for_scale(persons);
    check_invariance(&raw, &ldbc::all_queries(&params));
}

#[test]
fn job_results_are_invariant_under_edge_order() {
    let raw = gfcl_datagen::generate_movies(MovieParams::scale(60));
    check_invariance(&raw, &job::all_queries());
}

#[test]
fn khop_results_are_invariant_under_edge_order() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 600,
        avg_degree: 4.0,
        exponent: 1.8,
        seed: 11,
    });
    let mut queries = Vec::new();
    for hops in 1..=3 {
        for (mode_name, mode) in
            [("count", KhopMode::CountStar), ("chain", KhopMode::Chain(1_350_000_000))]
        {
            for backward in [false, true] {
                queries.push((
                    format!("khop-{hops}-{mode_name}-bwd={backward}"),
                    khop("NODE", "LINK", "ts", hops, mode, backward),
                ));
            }
        }
    }
    check_invariance(&raw, &queries);
}

//! Pushdown-vs-no-pushdown equivalence: for every query with scan-node
//! predicates, executing the *pushed* plan must be indistinguishable from
//! executing the classic read-then-filter plan — across all four engines,
//! at 1 and 4 workers, and at non-default morsel sizes (which change how
//! scan morsels align with zone-map blocks).
//!
//! This is the safety net for the whole pushdown path: a zone map whose
//! min/max is off by one, a block verdict that miscounts NULLs, or a
//! selection-aware fill that skips a live position all show up here as an
//! output mismatch against the `PlanOptions::no_pushdown()` plan
//! (`GFCL_NO_PUSHDOWN` is the same switch, environment-shaped).

use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_core::plan::{plan_with, PlanOptions, PlanStep};
use gfcl_core::query::{
    col, eq, ge, gt, in_set, le, lit, lt, not, or, starts_with, Agg, PatternQuery,
};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_datagen::{PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, RawGraph, RowGraph, StorageConfig};
use proptest::prelude::*;

/// Worker counts under test.
const THREADS: [usize; 2] = [1, 4];

fn engines(raw: &RawGraph) -> Vec<Box<dyn Engine>> {
    let col_graph = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let row_graph = Arc::new(RowGraph::build(raw).unwrap());
    vec![
        Box::new(GfClEngine::new(col_graph.clone())),
        Box::new(GfCvEngine::new(col_graph.clone())),
        Box::new(GfRvEngine::new(row_graph)),
        Box::new(RelEngine::new(col_graph)),
    ]
}

/// Execute `q` with and without pushdown on every engine at every worker
/// count and assert identical canonical output; for the serial LBP the
/// outputs must be *exactly* equal (same row order), and non-default
/// morsel sizes must change nothing either.
fn assert_pushdown_equivalent(raw: &RawGraph, queries: &[(String, PatternQuery)]) {
    let engines = engines(raw);
    let catalog = engines[0].catalog().clone();
    for (name, q) in queries {
        let pushed = plan_with(q, &catalog, &PlanOptions::default())
            .unwrap_or_else(|e| panic!("{name} failed to plan with pushdown: {e}"));
        let plain = plan_with(q, &catalog, &PlanOptions::no_pushdown())
            .unwrap_or_else(|e| panic!("{name} failed to plan without pushdown: {e}"));
        for e in &engines {
            for threads in THREADS {
                let opts = ExecOptions::with_threads(threads);
                let a = e
                    .run_plan_with(&pushed, &opts)
                    .unwrap_or_else(|err| panic!("{name} pushed failed on {}: {err}", e.name()));
                let b = e.run_plan_with(&plain, &opts).unwrap_or_else(|err| {
                    panic!("{name} no-pushdown failed on {}: {err}", e.name())
                });
                assert_eq!(
                    a.canonical(),
                    b.canonical(),
                    "{name}: pushdown changed {} output at {threads} worker(s)",
                    e.name()
                );
            }
        }
        // Serial LBP: byte-identical, not just canonically equal — and
        // stable under morsel sizes that split or straddle zone blocks.
        let lbp = &engines[0];
        let reference = lbp.run_plan_with(&plain, &ExecOptions::serial()).unwrap();
        assert_eq!(
            lbp.run_plan_with(&pushed, &ExecOptions::serial()).unwrap(),
            reference,
            "{name}"
        );
        for morsel in [7usize, 512, 1500] {
            let opts = ExecOptions::serial().morsel(morsel);
            assert_eq!(
                lbp.run_plan_with(&pushed, &opts).unwrap(),
                reference,
                "{name}: morsel {morsel} changed the serial output"
            );
        }
    }
}

/// The pushdown-relevant query shapes over a power-law graph (NODE.id is a
/// dense sequential key — the zone-map sweet spot).
fn powerlaw_queries(n: usize) -> Vec<(String, PatternQuery)> {
    let n = n as i64;
    let khop = |hops: usize| {
        let mut b = PatternQuery::builder();
        for i in 0..=hops {
            b = b.node(&format!("v{i}"), "NODE");
        }
        for i in 0..hops {
            b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
        }
        b
    };
    vec![
        (
            "scan-range-count".into(),
            khop(0).filter(ge(col("v0", "id"), lit(n - n / 64 - 1))).returns_count().build(),
        ),
        (
            "scan-range-rows".into(),
            khop(0).filter(lt(col("v0", "id"), lit(n / 7))).returns(&[("v0", "id")]).build(),
        ),
        (
            "scan-in-set".into(),
            khop(0)
                .filter(gfcl_core::query::Expr::InSet {
                    prop: gfcl_core::query::PropRef { var: "v0".into(), prop: "id".into() },
                    values: vec![0i64.into(), (n / 2).into(), (n - 1).into(), (n + 5).into()],
                })
                .returns(&[("v0", "id")])
                .build(),
        ),
        (
            "scan-or-not".into(),
            khop(0)
                .filter(or(vec![lt(col("v0", "id"), lit(3)), not(le(col("v0", "id"), lit(n - 3)))]))
                .returns(&[("v0", "id")])
                .build(),
        ),
        (
            "one-hop-pushed-start".into(),
            khop(1)
                .filter(ge(col("v0", "id"), lit(n - n / 8)))
                .filter(gt(col("e1", "ts"), lit(1_350_000_000)))
                .returns_count()
                .build(),
        ),
        (
            "two-hop-far-end-filter".into(),
            // The optimizer may start from either end; whichever it scans,
            // the id predicate on that end is pushable.
            khop(2).filter(eq(col("v2", "id"), lit(n / 3))).returns_count().build(),
        ),
        (
            "grouped-with-pushed-filter".into(),
            khop(1)
                .filter(lt(col("v0", "id"), lit(n / 4)))
                .group_by(&[("v0", "id")])
                .returns_agg(vec![Agg::count_star()])
                .build(),
        ),
    ]
}

/// String/date predicates over the social schema (dictionary bitmaps +
/// code-presence zone pruning).
fn social_queries() -> Vec<(String, PatternQuery)> {
    let knows1 = || {
        PatternQuery::builder().node("p", "Person").node("q", "Person").edge("k", "knows", "p", "q")
    };
    vec![
        (
            "string-starts-with".into(),
            knows1().filter(starts_with("p", "fName", "A")).returns_count().build(),
        ),
        (
            "string-in-set".into(),
            knows1()
                .filter(in_set("p", "browserUsed", &["Chrome", "Firefox"]))
                .returns(&[("p", "id"), ("q", "id")])
                .build(),
        ),
        (
            "date-range-and-gender".into(),
            knows1()
                .filter(ge(col("p", "birthday"), lit(300_000_000)))
                .filter(eq(col("p", "gender"), lit("female")))
                .returns_count()
                .build(),
        ),
    ]
}

#[test]
fn powerlaw_pushdown_agrees() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 3000,
        avg_degree: 5.0,
        exponent: 1.8,
        seed: 23,
    });
    assert_pushdown_equivalent(&raw, &powerlaw_queries(3000));
}

#[test]
fn social_pushdown_agrees() {
    let raw = gfcl_datagen::generate_social(SocialParams::scale(120));
    assert_pushdown_equivalent(&raw, &social_queries());
}

#[test]
fn pushed_plans_actually_push() {
    // Guard against the suite silently testing nothing: the headline
    // queries must produce plans with pushed predicates on the scan.
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 500,
        avg_degree: 3.0,
        exponent: 1.8,
        seed: 5,
    });
    let graph = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
    for (name, q) in powerlaw_queries(500) {
        if name == "two-hop-far-end-filter" {
            continue; // start choice is the optimizer's
        }
        let p = plan_with(&q, graph.catalog(), &PlanOptions::default()).unwrap();
        match &p.steps[0] {
            PlanStep::ScanAll { pushed, .. } => {
                assert!(!pushed.is_empty(), "{name}: nothing was pushed")
            }
            s => panic!("{name}: expected a scan, got {s:?}"),
        }
    }
}

// ---- Randomized graphs and predicates --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_powerlaw_pushdown_agrees(
        nodes in 40usize..220,
        avg_degree in 1.0f64..5.0,
        seed in 0u64..1000,
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
            nodes,
            avg_degree,
            exponent: 1.8,
            seed,
        });
        let n = nodes as i64;
        let lo = (n as f64 * lo_frac) as i64;
        let hi = (n as f64 * hi_frac) as i64;
        let khop = |hops: usize| {
            let mut b = PatternQuery::builder();
            for i in 0..=hops {
                b = b.node(&format!("v{i}"), "NODE");
            }
            for i in 0..hops {
                b = b.edge(
                    &format!("e{}", i + 1),
                    "LINK",
                    &format!("v{i}"),
                    &format!("v{}", i + 1),
                );
            }
            b
        };
        let queries = vec![
            (
                format!("rand-scan[{lo},{hi}]"),
                khop(0)
                    .filter(ge(col("v0", "id"), lit(lo.min(hi))))
                    .filter(le(col("v0", "id"), lit(lo.max(hi))))
                    .returns(&[("v0", "id")])
                    .build(),
            ),
            (
                format!("rand-one-hop[{lo}]"),
                khop(1).filter(lt(col("v0", "id"), lit(lo))).returns_count().build(),
            ),
        ];
        assert_pushdown_equivalent(&raw, &queries);
    }
}

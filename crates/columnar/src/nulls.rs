//! NULL / empty-list compression layouts (Section 5.3).
//!
//! All compressed layouts follow Abadi's design: non-NULL elements are
//! stored **densely** in a values array, and a secondary structure maps a
//! logical position to the physical position of its value (its *rank*).
//! [`NullMap`] is that secondary structure, with five interchangeable
//! layouts:
//!
//! | Layout          | Source                   | `physical(p)` cost     |
//! |-----------------|--------------------------|------------------------|
//! | `AllValid`      | no NULLs at all          | O(1), identity         |
//! | `Uncompressed`  | values kept at all slots | O(1), identity         |
//! | `Sparse`        | Abadi #1 (>90% NULL)     | O(log n) binary search |
//! | `Ranges`        | Abadi #2 (dense runs)    | O(log r) binary search |
//! | `Vanilla`       | Abadi #3 (1 bit/elem)    | **O(p)** linear rank   |
//! | `Jacobson`      | paper's #3 + rank index  | O(1), 2 bits/elem      |
//!
//! The same structure compresses empty adjacency lists in CSRs (a vertex
//! with an empty list is a "NULL" CSR entry) — Section 8.4.

use gfcl_common::{Error, MemoryUsage, Reader, Result, Writer};

use crate::bitmap::Bitmap;
use crate::rank::{JacobsonRank, RankParams};
use crate::uint_array::UIntArray;

/// Which NULL layout to build (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullKind {
    /// Assert no NULLs; zero overhead.
    None,
    /// Keep values at every slot plus a validity bitmap; no compression.
    Uncompressed,
    /// Abadi #1: sorted list of non-NULL positions.
    Sparse,
    /// Abadi #2: (start, length) runs of non-NULL positions.
    Ranges,
    /// Abadi #3: bit string, rank computed by scanning (slow baseline).
    Vanilla,
    /// Abadi #3 + Jacobson rank index: the paper's J-NULL.
    Jacobson(RankParams),
}

impl NullKind {
    /// The paper's default configuration: Jacobson with `m = c = 16`.
    pub fn jacobson_default() -> Self {
        NullKind::Jacobson(RankParams::default())
    }
}

/// Secondary structure mapping logical column positions to physical
/// positions in a dense non-NULL values array.
#[derive(Debug, Clone, PartialEq)]
pub enum NullMap {
    AllValid {
        len: usize,
    },
    Uncompressed {
        valid: Bitmap,
        n_valid: usize,
    },
    Sparse {
        len: usize,
        /// Sorted logical positions of the non-NULL values.
        positions: UIntArray,
    },
    Ranges {
        len: usize,
        /// Start of each maximal non-NULL run (sorted).
        starts: UIntArray,
        /// Length of each run.
        run_lens: UIntArray,
        /// Number of non-NULL values before each run.
        prefix: UIntArray,
        n_valid: usize,
    },
    Vanilla {
        bits: Bitmap,
        n_valid: usize,
    },
    Jacobson {
        bits: Bitmap,
        rank: JacobsonRank,
    },
}

impl NullMap {
    /// Build the chosen layout from a validity slice.
    pub fn build(valid: &[bool], kind: NullKind) -> NullMap {
        match kind {
            NullKind::None => {
                debug_assert!(valid.iter().all(|&v| v), "NullKind::None requires all-valid data");
                NullMap::AllValid { len: valid.len() }
            }
            NullKind::Uncompressed => NullMap::Uncompressed {
                valid: Bitmap::from_bools(valid),
                n_valid: valid.iter().filter(|&&v| v).count(),
            },
            NullKind::Sparse => {
                let pos: Vec<u64> =
                    valid.iter().enumerate().filter(|(_, &v)| v).map(|(i, _)| i as u64).collect();
                NullMap::Sparse { len: valid.len(), positions: UIntArray::from_values(&pos, true) }
            }
            NullKind::Ranges => {
                let mut starts = Vec::new();
                let mut run_lens = Vec::new();
                let mut prefix = Vec::new();
                let mut n_valid = 0u64;
                let mut i = 0usize;
                while i < valid.len() {
                    if valid[i] {
                        let start = i;
                        while i < valid.len() && valid[i] {
                            i += 1;
                        }
                        starts.push(start as u64);
                        run_lens.push((i - start) as u64);
                        prefix.push(n_valid);
                        n_valid += (i - start) as u64;
                    } else {
                        i += 1;
                    }
                }
                NullMap::Ranges {
                    len: valid.len(),
                    starts: UIntArray::from_values(&starts, true),
                    run_lens: UIntArray::from_values(&run_lens, true),
                    prefix: UIntArray::from_values(&prefix, true),
                    n_valid: n_valid as usize,
                }
            }
            NullKind::Vanilla => NullMap::Vanilla {
                bits: Bitmap::from_bools(valid),
                n_valid: valid.iter().filter(|&&v| v).count(),
            },
            NullKind::Jacobson(params) => {
                let bits = Bitmap::from_bools(valid);
                let rank = JacobsonRank::build(&bits, params);
                NullMap::Jacobson { bits, rank }
            }
        }
    }

    /// Logical length of the column.
    pub fn len(&self) -> usize {
        match self {
            NullMap::AllValid { len } => *len,
            NullMap::Uncompressed { valid, .. } => valid.len(),
            NullMap::Sparse { len, .. } => *len,
            NullMap::Ranges { len, .. } => *len,
            NullMap::Vanilla { bits, .. } => bits.len(),
            NullMap::Jacobson { bits, .. } => bits.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of non-NULL positions.
    pub fn count_valid(&self) -> usize {
        match self {
            NullMap::AllValid { len } => *len,
            NullMap::Uncompressed { n_valid, .. } => *n_valid,
            NullMap::Sparse { positions, .. } => positions.len(),
            NullMap::Ranges { n_valid, .. } => *n_valid,
            NullMap::Vanilla { n_valid, .. } => *n_valid,
            NullMap::Jacobson { rank, .. } => rank.count_ones(),
        }
    }

    /// Is position `i` non-NULL?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            NullMap::AllValid { .. } => true,
            NullMap::Uncompressed { valid, .. } => valid.get(i),
            NullMap::Sparse { positions, .. } => binary_search_uint(positions, i as u64).is_some(),
            NullMap::Ranges { starts, run_lens, .. } => {
                range_lookup(starts, run_lens, i as u64).is_some()
            }
            NullMap::Vanilla { bits, .. } => bits.get(i),
            NullMap::Jacobson { bits, .. } => bits.get(i),
        }
    }

    /// Physical position of logical position `i` in the dense values array,
    /// or `None` if `i` is NULL. For `AllValid`/`Uncompressed` (dense data)
    /// the physical position equals the logical position.
    #[inline]
    pub fn physical(&self, i: usize) -> Option<usize> {
        match self {
            NullMap::AllValid { .. } => Some(i),
            NullMap::Uncompressed { valid, .. } => valid.get(i).then_some(i),
            NullMap::Sparse { positions, .. } => binary_search_uint(positions, i as u64),
            NullMap::Ranges { starts, run_lens, prefix, .. } => {
                range_lookup(starts, run_lens, i as u64)
                    .map(|(run, delta)| prefix.get(run) as usize + delta)
            }
            NullMap::Vanilla { bits, .. } => {
                // Deliberately linear: the vanilla baseline of Figure 10.
                bits.get(i).then(|| bits.rank_scan(i))
            }
            NullMap::Jacobson { bits, rank } => bits.get(i).then(|| rank.rank(bits, i)),
        }
    }

    /// `true` if values are stored at every slot (physical == logical).
    pub fn is_dense(&self) -> bool {
        matches!(self, NullMap::AllValid { .. } | NullMap::Uncompressed { .. })
    }

    /// Encode into a metadata stream. NULL maps stay fully resident after a
    /// reopen (they are consulted on every access), so everything is
    /// inline; the Jacobson rank index stores only its parameters and is
    /// rebuilt deterministically from the bit string on decode.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            NullMap::AllValid { len } => {
                w.u8(0);
                w.usize(*len);
            }
            NullMap::Uncompressed { valid, n_valid } => {
                w.u8(1);
                valid.encode(w);
                w.usize(*n_valid);
            }
            NullMap::Sparse { len, positions } => {
                w.u8(2);
                w.usize(*len);
                positions.encode_inline(w);
            }
            NullMap::Ranges { len, starts, run_lens, prefix, n_valid } => {
                w.u8(3);
                w.usize(*len);
                starts.encode_inline(w);
                run_lens.encode_inline(w);
                prefix.encode_inline(w);
                w.usize(*n_valid);
            }
            NullMap::Vanilla { bits, n_valid } => {
                w.u8(4);
                bits.encode(w);
                w.usize(*n_valid);
            }
            NullMap::Jacobson { bits, rank } => {
                w.u8(5);
                bits.encode(w);
                let p = rank.params();
                w.u32(p.c);
                w.u32(p.m);
            }
        }
    }

    /// Decode a [`NullMap::encode`] stream.
    pub fn decode(r: &mut Reader<'_>) -> Result<NullMap> {
        Ok(match r.u8()? {
            0 => NullMap::AllValid { len: r.usize()? },
            1 => NullMap::Uncompressed { valid: Bitmap::decode(r)?, n_valid: r.usize()? },
            2 => NullMap::Sparse { len: r.usize()?, positions: UIntArray::decode_inline(r)? },
            3 => NullMap::Ranges {
                len: r.usize()?,
                starts: UIntArray::decode_inline(r)?,
                run_lens: UIntArray::decode_inline(r)?,
                prefix: UIntArray::decode_inline(r)?,
                n_valid: r.usize()?,
            },
            4 => NullMap::Vanilla { bits: Bitmap::decode(r)?, n_valid: r.usize()? },
            5 => {
                let bits = Bitmap::decode(r)?;
                let params = RankParams::new(r.u32()?, r.u32()?)
                    .map_err(|e| Error::Storage(format!("bad rank params: {e}")))?;
                let rank = JacobsonRank::build(&bits, params);
                NullMap::Jacobson { bits, rank }
            }
            t => return Err(Error::Storage(format!("invalid null-map tag {t}"))),
        })
    }

    /// Bytes of the secondary structure only (the Figure 10 / Table 8
    /// "overhead" number: bit strings + prefix sums + positions).
    pub fn overhead_bytes(&self) -> usize {
        match self {
            NullMap::AllValid { .. } => 0,
            NullMap::Uncompressed { valid, .. } => valid.memory_bytes(),
            NullMap::Sparse { positions, .. } => positions.memory_bytes(),
            NullMap::Ranges { starts, run_lens, prefix, .. } => {
                starts.memory_bytes() + run_lens.memory_bytes() + prefix.memory_bytes()
            }
            NullMap::Vanilla { bits, .. } => bits.memory_bytes(),
            NullMap::Jacobson { bits, rank } => bits.memory_bytes() + rank.overhead_bytes(),
        }
    }
}

impl MemoryUsage for NullMap {
    fn memory_bytes(&self) -> usize {
        self.overhead_bytes()
    }
}

/// Binary search for `target` in a sorted `UIntArray`; returns its index.
#[inline]
fn binary_search_uint(arr: &UIntArray, target: u64) -> Option<usize> {
    let mut lo = 0usize;
    let mut hi = arr.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let v = arr.get(mid);
        if v < target {
            lo = mid + 1;
        } else if v > target {
            hi = mid;
        } else {
            return Some(mid);
        }
    }
    None
}

/// Find the run containing `target`; returns `(run index, offset in run)`.
#[inline]
fn range_lookup(starts: &UIntArray, run_lens: &UIntArray, target: u64) -> Option<(usize, usize)> {
    if starts.is_empty() {
        return None;
    }
    // Largest run with start <= target.
    let mut lo = 0usize;
    let mut hi = starts.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if starts.get(mid) <= target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        return None;
    }
    let run = lo - 1;
    let delta = target - starts.get(run);
    (delta < run_lens.get(run)).then_some((run, delta as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<NullKind> {
        vec![
            NullKind::Uncompressed,
            NullKind::Sparse,
            NullKind::Ranges,
            NullKind::Vanilla,
            NullKind::jacobson_default(),
            NullKind::Jacobson(RankParams::new(8, 8).unwrap()),
        ]
    }

    fn reference_physical(valid: &[bool], i: usize) -> Option<usize> {
        if !valid[i] {
            return None;
        }
        Some(valid[..i].iter().filter(|&&v| v).count())
    }

    #[test]
    fn layouts_agree_on_physical_positions() {
        let patterns: Vec<Vec<bool>> = vec![
            (0..500).map(|i| i % 3 != 0).collect(),        // ~66% dense
            (0..500).map(|i| i % 17 == 0).collect(),       // sparse
            (0..500).map(|i| (i / 50) % 2 == 0).collect(), // runs
            vec![true; 100],
            vec![false; 100],
        ];
        for valid in &patterns {
            for kind in all_kinds() {
                let map = NullMap::build(valid, kind);
                assert_eq!(map.len(), valid.len());
                assert_eq!(map.count_valid(), valid.iter().filter(|&&v| v).count(), "{kind:?}");
                for i in 0..valid.len() {
                    assert_eq!(map.is_valid(i), valid[i], "{kind:?} is_valid({i})");
                    let expected = if map.is_dense() {
                        valid[i].then_some(i)
                    } else {
                        reference_physical(valid, i)
                    };
                    assert_eq!(map.physical(i), expected, "{kind:?} physical({i})");
                }
            }
        }
    }

    #[test]
    fn all_valid_has_zero_overhead() {
        let map = NullMap::build(&vec![true; 1000], NullKind::None);
        assert_eq!(map.overhead_bytes(), 0);
        assert!(map.is_dense());
        assert_eq!(map.physical(999), Some(999));
    }

    #[test]
    fn jacobson_overhead_is_about_two_bits_per_element() {
        let valid: Vec<bool> = (0..64 * 1024).map(|i| i % 2 == 0).collect();
        let map = NullMap::build(&valid, NullKind::jacobson_default());
        let bits = map.overhead_bytes() * 8;
        let per_elem = bits as f64 / valid.len() as f64;
        assert!((1.9..2.3).contains(&per_elem), "got {per_elem} bits/elem");
    }

    #[test]
    fn vanilla_overhead_is_about_one_bit_per_element() {
        let valid: Vec<bool> = (0..64 * 1024).map(|i| i % 2 == 0).collect();
        let map = NullMap::build(&valid, NullKind::Vanilla);
        let per_elem = (map.overhead_bytes() * 8) as f64 / valid.len() as f64;
        assert!((0.9..1.1).contains(&per_elem), "got {per_elem} bits/elem");
    }

    #[test]
    fn sparse_is_compact_for_very_sparse_columns() {
        let valid: Vec<bool> = (0..10_000).map(|i| i % 100 == 0).collect();
        let sparse = NullMap::build(&valid, NullKind::Sparse);
        let vanilla = NullMap::build(&valid, NullKind::Vanilla);
        assert!(sparse.overhead_bytes() < vanilla.overhead_bytes());
    }

    #[test]
    fn encode_roundtrip_every_layout() {
        let valid: Vec<bool> = (0..700).map(|i| i % 4 != 1 && i % 31 != 0).collect();
        for kind in all_kinds().into_iter().chain([NullKind::None]) {
            let map = if matches!(kind, NullKind::None) {
                NullMap::build(&vec![true; 700], kind)
            } else {
                NullMap::build(&valid, kind)
            };
            let mut w = Writer::new();
            map.encode(&mut w);
            let bytes = w.into_bytes();
            let back = NullMap::decode(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back, map, "{kind:?}");
            for i in 0..map.len() {
                assert_eq!(back.physical(i), map.physical(i), "{kind:?} at {i}");
            }
        }
    }

    #[test]
    fn bad_tag_and_truncation_are_storage_errors() {
        let mut w = Writer::new();
        w.u8(9);
        let bytes = w.into_bytes();
        assert!(NullMap::decode(&mut Reader::new(&bytes)).is_err());
        let mut w = Writer::new();
        NullMap::build(&[true, false, true], NullKind::jacobson_default()).encode(&mut w);
        let bytes = w.into_bytes();
        assert!(NullMap::decode(&mut Reader::new(&bytes[..bytes.len() - 2])).is_err());
    }

    #[test]
    fn empty_column() {
        for kind in all_kinds() {
            let map = NullMap::build(&[], kind);
            assert_eq!(map.len(), 0);
            assert!(map.is_empty());
            assert_eq!(map.count_valid(), 0);
        }
    }
}

//! Simplified Jacobson bit-vector rank index (Section 5.3, Figure 7).
//!
//! Abadi's bit-string NULL-compression scheme stores non-NULL values densely
//! plus one bit per position, but finding the value at position `p` requires
//! `rank(p)` — the number of non-NULLs before `p` — which is linear-time
//! without an index. The paper augments the bit string with a simplified
//! Jacobson index:
//!
//! * the column is divided into **blocks** of `2^m` elements; each block
//!   stores absolute ranks compactly,
//! * each block is divided into **chunks** of `c` bits; an `m`-bit prefix
//!   sum per chunk holds the number of 1-bits before the chunk within its
//!   block,
//! * a pre-populated static map `M[b][i]` of `2^c × c` cells gives the
//!   number of 1-bits before the `i`-th bit of any `c`-bit string `b`.
//!
//! `rank(p) = blockBase[p / 2^m] + prefix[p / c] + M[bits(chunk of p)][p mod c]`
//!
//! With the defaults `m = c = 16`: a 1 MB shared map, 64K-element blocks,
//! and `m/c = 1` extra bit per element — 2 bits total with the bit string
//! itself, versus 1 bit for the vanilla scheme, in exchange for
//! constant-time access (Desideratum 2).

use std::sync::OnceLock;

use gfcl_common::{MemoryUsage, Result};

use crate::bitmap::Bitmap;

/// Tunable parameters of the Jacobson index (Appendix A.2 sensitivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankParams {
    /// Chunk size in bits: 4, 8 or 16. Determines the static map size
    /// (`2^c * c` bytes): 64 B at c=4, 2 KB at c=8, 1 MB at c=16. The paper
    /// notes c=24 would already need 1.6 GB, so larger values are rejected.
    pub c: u32,
    /// Prefix-sum width in bits: 8, 16, 24 or 32. Blocks hold `2^m`
    /// elements; the per-element overhead is `m/c` bits.
    pub m: u32,
}

impl Default for RankParams {
    fn default() -> Self {
        RankParams { c: 16, m: 16 }
    }
}

impl RankParams {
    pub fn new(c: u32, m: u32) -> Result<Self> {
        if ![4, 8, 16].contains(&c) {
            return Err(gfcl_common::Error::Invalid(format!(
                "Jacobson chunk size c must be 4, 8 or 16 (got {c}); larger maps are impractically big"
            )));
        }
        if ![8, 16, 24, 32].contains(&m) {
            return Err(gfcl_common::Error::Invalid(format!(
                "Jacobson prefix width m must be 8, 16, 24 or 32 (got {m})"
            )));
        }
        Ok(RankParams { c, m })
    }

    /// Elements per block: `2^m`.
    pub fn block_elems(self) -> usize {
        1usize << self.m
    }

    /// Size in bytes of the shared pre-populated map for this `c`.
    pub fn map_bytes(self) -> usize {
        (1usize << self.c) * self.c as usize
    }
}

/// `M[b * c + i]` = number of 1-bits strictly before bit `i` of the `c`-bit
/// string `b`. Built once per process per `c` and shared by every column.
fn popcount_map(c: u32) -> &'static [u8] {
    static MAP4: OnceLock<Vec<u8>> = OnceLock::new();
    static MAP8: OnceLock<Vec<u8>> = OnceLock::new();
    static MAP16: OnceLock<Vec<u8>> = OnceLock::new();
    let cell = match c {
        4 => &MAP4,
        8 => &MAP8,
        16 => &MAP16,
        _ => unreachable!("validated by RankParams::new"),
    };
    cell.get_or_init(|| {
        let n = 1usize << c;
        let mut map = vec![0u8; n * c as usize];
        for b in 0..n {
            for i in 0..c as usize {
                map[b * c as usize + i] = (b & ((1 << i) - 1)).count_ones() as u8;
            }
        }
        map
    })
}

/// `m`-bit prefix sums stored byte-aligned (1/2/3/4 bytes per entry).
#[derive(Debug, Clone, PartialEq)]
struct PackedInts {
    width: usize,
    data: Vec<u8>,
}

impl PackedInts {
    fn new(width_bits: u32, cap: usize) -> Self {
        let width = (width_bits as usize) / 8;
        PackedInts { width, data: Vec::with_capacity(cap * width) }
    }

    #[inline]
    fn push(&mut self, v: u64) {
        debug_assert!(self.width == 8 || v < (1u64 << (self.width * 8)));
        let bytes = v.to_le_bytes();
        self.data.extend_from_slice(&bytes[..self.width]);
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        let start = i * self.width;
        let mut out = [0u8; 8];
        out[..self.width].copy_from_slice(&self.data[start..start + self.width]);
        u64::from_le_bytes(out)
    }
}

impl MemoryUsage for PackedInts {
    fn memory_bytes(&self) -> usize {
        self.data.memory_bytes()
    }
}

/// Constant-time rank index over an external [`Bitmap`].
///
/// The index does not own the bitmap; [`crate::NullMap`] keeps both together.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobsonRank {
    params: RankParams,
    /// Absolute rank at the start of each `2^m`-element block.
    block_base: Vec<u64>,
    /// Per-chunk prefix sums, relative to the containing block, `m` bits each.
    prefix: PackedInts,
    total_ones: usize,
}

impl JacobsonRank {
    /// Build the index for `bits`.
    pub fn build(bits: &Bitmap, params: RankParams) -> Self {
        // Materialize the shared popcount map now so query-time rank calls
        // never pay the one-off construction cost.
        let _ = popcount_map(params.c);
        let c = params.c as usize;
        let block_elems = params.block_elems();
        let len = bits.len();
        let n_chunks = len.div_ceil(c);
        let mut prefix = PackedInts::new(params.m, n_chunks);
        let mut block_base = Vec::with_capacity(len.div_ceil(block_elems) + 1);

        let mut abs_rank = 0u64;
        let mut block_start_rank = 0u64;
        for chunk in 0..n_chunks {
            let bit_pos = chunk * c;
            if bit_pos.is_multiple_of(block_elems) {
                block_base.push(abs_rank);
                block_start_rank = abs_rank;
            }
            prefix.push(abs_rank - block_start_rank);
            let width = c.min(len - bit_pos);
            let b = bits.bits_at(bit_pos, width.max(1));
            // Mask out bits beyond len for the final partial chunk.
            let b = if width == 0 { 0 } else { b & mask_u32(width) };
            abs_rank += b.count_ones() as u64;
        }
        if block_base.is_empty() {
            block_base.push(0);
        }
        JacobsonRank { params, block_base, prefix, total_ones: abs_rank as usize }
    }

    /// Number of 1-bits strictly before position `p`, in constant time:
    /// one block-base read, one prefix read, one map lookup.
    #[inline]
    pub fn rank(&self, bits: &Bitmap, p: usize) -> usize {
        debug_assert!(p < bits.len());
        let c = self.params.c as usize;
        let chunk = p / c;
        let block = p >> self.params.m;
        let within = p % c;
        let chunk_bits = bits.bits_at(chunk * c, c.min(bits.len() - chunk * c).max(1));
        let map = popcount_map(self.params.c);
        let in_chunk = map[(chunk_bits as usize & ((1 << c) - 1)) * c + within] as usize;
        self.block_base[block] as usize + self.prefix.get(chunk) as usize + in_chunk
    }

    /// Total number of 1-bits in the indexed bitmap.
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    pub fn params(&self) -> RankParams {
        self.params
    }

    /// Index overhead in bytes: prefix sums + block bases. The shared static
    /// map (`2^c * c` bytes, 1 MB at c=16) is amortized across all columns
    /// in the process and reported separately by [`RankParams::map_bytes`].
    pub fn overhead_bytes(&self) -> usize {
        self.prefix.memory_bytes() + self.block_base.memory_bytes()
    }
}

#[inline]
fn mask_u32(width: usize) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

impl MemoryUsage for JacobsonRank {
    fn memory_bytes(&self) -> usize {
        self.overhead_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_ranks(bits: &[bool], params: RankParams) {
        let bm = Bitmap::from_bools(bits);
        let idx = JacobsonRank::build(&bm, params);
        let mut naive = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(idx.rank(&bm, i), naive, "rank({i}) with c={} m={}", params.c, params.m);
            if b {
                naive += 1;
            }
        }
        assert_eq!(idx.count_ones(), naive);
    }

    #[test]
    fn rank_matches_naive_default_params() {
        let bits: Vec<bool> = (0..5000).map(|i| (i * 2654435761u64) % 10 < 3).collect();
        check_all_ranks(&bits, RankParams::default());
    }

    #[test]
    fn rank_matches_naive_all_params() {
        let bits: Vec<bool> = (0..2000).map(|i| i % 5 != 0).collect();
        for c in [4u32, 8, 16] {
            for m in [8u32, 16, 24, 32] {
                check_all_ranks(&bits, RankParams::new(c, m).unwrap());
            }
        }
    }

    #[test]
    fn rank_spans_multiple_blocks() {
        // m=8 -> 256-element blocks; 1000 elements = 4 blocks.
        let bits: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        check_all_ranks(&bits, RankParams::new(8, 8).unwrap());
    }

    #[test]
    fn degenerate_bitmaps() {
        check_all_ranks(&[], RankParams::default());
        check_all_ranks(&[true], RankParams::default());
        check_all_ranks(&[false], RankParams::default());
        check_all_ranks(&vec![true; 333], RankParams::new(8, 16).unwrap());
        check_all_ranks(&vec![false; 333], RankParams::new(16, 8).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(RankParams::new(24, 16).is_err());
        assert!(RankParams::new(16, 12).is_err());
        assert!(RankParams::new(16, 16).is_ok());
    }

    #[test]
    fn overhead_is_m_over_c_bits_per_element() {
        // m=16, c=16 -> 1 extra bit per element -> n/8 bytes of prefix sums.
        let n = 64 * 1024;
        let bm = Bitmap::from_fn(n, |i| i % 3 == 0);
        let idx = JacobsonRank::build(&bm, RankParams::default());
        let expected_prefix = (n / 16) * 2; // one 2-byte prefix per 16 bits
        assert!(idx.overhead_bytes() >= expected_prefix);
        assert!(idx.overhead_bytes() < expected_prefix + 64);
    }

    #[test]
    fn map_bytes_matches_paper() {
        assert_eq!(RankParams::new(16, 16).unwrap().map_bytes(), 1 << 20); // 1 MB
        assert_eq!(RankParams::new(8, 16).unwrap().map_bytes(), 2048); // 2 KB
    }
}

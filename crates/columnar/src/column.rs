//! A typed column: physical values + a [`NullMap`].
//!
//! Columns are the unit of storage for vertex properties ("vertex columns",
//! Section 4.1.2), edge property pages (Section 4.2) and edge columns. A
//! column with a *compressed* NULL layout stores only its non-NULL values,
//! densely; the [`NullMap`] translates logical to physical positions in
//! constant time (for the Jacobson layout).
//!
//! Value arrays are [`ArrayData`]: fully resident when built in memory,
//! paged through a buffer pool when reopened from the on-disk format. The
//! NULL map, dictionary and zone map always stay resident — they are
//! consulted on every access (or every block) and are small.

use std::sync::Arc;

use gfcl_common::{DataType, Error, MemoryUsage, Reader, Result, Value, Writer};

use crate::dictionary::Dictionary;
use crate::nulls::{NullKind, NullMap};
use crate::paged::{ArrayData, SegmentSink, SegmentSource};
use crate::uint_array::UIntArray;
use crate::zonemap::ZoneMap;

/// Physical value storage of a column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `Int64` and `Date` values.
    I64(ArrayData<i64>),
    F64(ArrayData<f64>),
    Bool(ArrayData<bool>),
    /// Dictionary-encoded strings: fixed-length codes into `dict`.
    Str {
        dict: Dictionary,
        codes: UIntArray,
    },
}

/// An immutable typed column with pluggable NULL compression.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    data: ColumnData,
    nulls: NullMap,
    /// Per-block min/max synopses for scan pruning (built on demand by
    /// [`Column::build_zone_map`]; `None` until then).
    zones: Option<Box<ZoneMap>>,
}

impl Column {
    /// Build from `Option<i64>` values (dtype `Int64` or `Date`).
    pub fn from_i64(dtype: DataType, values: &[Option<i64>], kind: NullKind) -> Column {
        debug_assert!(matches!(dtype, DataType::Int64 | DataType::Date));
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let nulls = NullMap::build(&valid, kind);
        let data: Vec<i64> = if nulls.is_dense() {
            values.iter().map(|v| v.unwrap_or(0)).collect()
        } else {
            // `flatten()` hides the size hint; collect + shrink so memory
            // accounting reflects the actual non-NULL count.
            let mut d: Vec<_> = values.iter().flatten().copied().collect();
            d.shrink_to_fit();
            d
        };
        Column { dtype, data: ColumnData::I64(data.into()), nulls, zones: None }
    }

    /// Build from `Option<f64>` values.
    pub fn from_f64(values: &[Option<f64>], kind: NullKind) -> Column {
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let nulls = NullMap::build(&valid, kind);
        let data: Vec<f64> = if nulls.is_dense() {
            values.iter().map(|v| v.unwrap_or(0.0)).collect()
        } else {
            // `flatten()` hides the size hint; collect + shrink so memory
            // accounting reflects the actual non-NULL count.
            let mut d: Vec<_> = values.iter().flatten().copied().collect();
            d.shrink_to_fit();
            d
        };
        Column { dtype: DataType::Float64, data: ColumnData::F64(data.into()), nulls, zones: None }
    }

    /// Build from `Option<bool>` values.
    pub fn from_bool(values: &[Option<bool>], kind: NullKind) -> Column {
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let nulls = NullMap::build(&valid, kind);
        let data: Vec<bool> = if nulls.is_dense() {
            values.iter().map(|v| v.unwrap_or(false)).collect()
        } else {
            // `flatten()` hides the size hint; collect + shrink so memory
            // accounting reflects the actual non-NULL count.
            let mut d: Vec<_> = values.iter().flatten().copied().collect();
            d.shrink_to_fit();
            d
        };
        Column { dtype: DataType::Bool, data: ColumnData::Bool(data.into()), nulls, zones: None }
    }

    /// Build a dictionary-encoded string column. With `suppress = true` the
    /// code array uses `⌈log2(z)/8⌉`-byte codes; otherwise 8-byte codes
    /// (the pre-compression configurations of Table 2).
    pub fn from_str<S: AsRef<str>>(values: &[Option<S>], kind: NullKind, suppress: bool) -> Column {
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let nulls = NullMap::build(&valid, kind);
        let mut dict = Dictionary::new();
        let mut raw_codes: Vec<u64> = Vec::new();
        if nulls.is_dense() {
            for v in values {
                let code = match v {
                    Some(s) => dict.intern(s.as_ref()) as u64,
                    None => 0,
                };
                raw_codes.push(code);
            }
            // Ensure code 0 exists even if every value is NULL.
            if dict.is_empty() {
                dict.intern("");
            }
        } else {
            for v in values.iter().flatten() {
                raw_codes.push(dict.intern(v.as_ref()) as u64);
            }
            if dict.is_empty() {
                dict.intern("");
            }
        }
        let max_code = (dict.len() as u64).saturating_sub(1);
        let codes = if suppress {
            let mut arr = UIntArray::with_capacity_for(max_code, raw_codes.len());
            for c in &raw_codes {
                arr.push(*c);
            }
            arr
        } else {
            UIntArray::U64(raw_codes.into())
        };
        Column {
            dtype: DataType::String,
            data: ColumnData::Str { dict, codes },
            nulls,
            zones: None,
        }
    }

    /// Build from dynamically-typed values.
    pub fn from_values(dtype: DataType, values: &[Value], kind: NullKind) -> Result<Column> {
        match dtype {
            DataType::Int64 | DataType::Date => {
                let opts: Vec<Option<i64>> = values.iter().map(Value::as_i64).collect();
                Ok(Column::from_i64(dtype, &opts, kind))
            }
            DataType::Float64 => {
                let opts: Vec<Option<f64>> = values.iter().map(Value::as_f64).collect();
                Ok(Column::from_f64(&opts, kind))
            }
            DataType::Bool => {
                let opts: Vec<Option<bool>> = values.iter().map(Value::as_bool).collect();
                Ok(Column::from_bool(&opts, kind))
            }
            DataType::String => {
                let opts: Vec<Option<&str>> = values.iter().map(Value::as_str).collect();
                Ok(Column::from_str(&opts, kind, true))
            }
        }
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        !self.nulls.is_valid(i)
    }

    /// Read an `Int64`/`Date` value.
    #[inline]
    pub fn get_i64(&self, i: usize) -> Option<i64> {
        match &self.data {
            ColumnData::I64(v) => self.nulls.physical(i).map(|p| v.get(p)),
            _ => None,
        }
    }

    #[inline]
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        match &self.data {
            ColumnData::F64(v) => self.nulls.physical(i).map(|p| v.get(p)),
            _ => None,
        }
    }

    #[inline]
    pub fn get_bool(&self, i: usize) -> Option<bool> {
        match &self.data {
            ColumnData::Bool(v) => self.nulls.physical(i).map(|p| v.get(p)),
            _ => None,
        }
    }

    /// Read a dictionary code (string columns only).
    #[inline]
    pub fn get_code(&self, i: usize) -> Option<u64> {
        match &self.data {
            ColumnData::Str { codes, .. } => self.nulls.physical(i).map(|p| codes.get(p)),
            _ => None,
        }
    }

    /// Read and decode a string value.
    #[inline]
    pub fn get_str(&self, i: usize) -> Option<&str> {
        match &self.data {
            ColumnData::Str { dict, codes } => {
                self.nulls.physical(i).map(|p| dict.decode(codes.get(p)))
            }
            _ => None,
        }
    }

    /// Read as a dynamically-typed [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match &self.data {
            ColumnData::I64(_) => match self.get_i64(i) {
                Some(v) if self.dtype == DataType::Date => Value::Date(v),
                Some(v) => Value::Int64(v),
                None => Value::Null,
            },
            ColumnData::F64(_) => self.get_f64(i).map_or(Value::Null, Value::Float64),
            ColumnData::Bool(_) => self.get_bool(i).map_or(Value::Null, Value::Bool),
            ColumnData::Str { .. } => {
                self.get_str(i).map_or(Value::Null, |s| Value::String(s.to_owned()))
            }
        }
    }

    /// Build (or rebuild) the per-block zone map used for scan pruning.
    /// One pass over the logical positions; idempotent.
    pub fn build_zone_map(&mut self) {
        let zm = ZoneMap::build(self);
        self.zones = Some(Box::new(zm));
    }

    /// The zone map, when one has been built ([`Column::build_zone_map`]).
    /// Scans treat `None` as "no pruning possible".
    #[inline]
    pub fn zone_map(&self) -> Option<&ZoneMap> {
        self.zones.as_deref()
    }

    /// The dictionary, for string columns (predicate pre-evaluation).
    pub fn dictionary(&self) -> Option<&Dictionary> {
        match &self.data {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    pub fn null_map(&self) -> &NullMap {
        &self.nulls
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Logical bytes of the physical values (excluding the NULL structure),
    /// whether resident or on disk — the Table 2 accounting number, which a
    /// save/reopen must not change.
    pub fn data_bytes(&self) -> usize {
        self.resident_data_bytes() + self.pageable_bytes()
    }

    /// Value bytes held on the heap right now. Equal to
    /// [`Column::data_bytes`] for a built graph; the dictionary (always
    /// resident) for a reopened one.
    pub fn resident_data_bytes(&self) -> usize {
        match &self.data {
            ColumnData::I64(v) => v.resident_bytes(),
            ColumnData::F64(v) => v.resident_bytes(),
            ColumnData::Bool(v) => v.resident_bytes(),
            ColumnData::Str { dict, codes } => dict.memory_bytes() + codes.resident_bytes(),
        }
    }

    /// Value bytes living on disk, faulted through the buffer pool.
    pub fn pageable_bytes(&self) -> usize {
        match &self.data {
            ColumnData::I64(v) => v.pageable_bytes(),
            ColumnData::F64(v) => v.pageable_bytes(),
            ColumnData::Bool(v) => v.pageable_bytes(),
            ColumnData::Str { codes, .. } => codes.pageable_bytes(),
        }
    }

    /// `true` when the value array faults in from disk pages.
    pub fn is_paged(&self) -> bool {
        self.pageable_bytes() > 0
    }

    /// Heap bytes of the NULL secondary structure.
    pub fn null_overhead_bytes(&self) -> usize {
        self.nulls.overhead_bytes()
    }

    /// Physical value-array span backing logical rows `[start, end)`:
    /// identity for dense layouts, the first/last valid rank for compressed
    /// ones (`None` when the range holds no values).
    fn physical_span(&self, start: usize, end: usize) -> Option<(usize, usize)> {
        let end = end.min(self.len());
        if start >= end {
            return None;
        }
        if self.nulls.is_dense() {
            return Some((start, end));
        }
        let mut first = None;
        let mut last = None;
        for i in start..end {
            if let Some(p) = self.nulls.physical(i) {
                first.get_or_insert(p);
                last = Some(p);
            }
        }
        Some((first?, last? + 1))
    }

    /// Pin every page backing logical rows `[start, end)` so a morsel's
    /// reads cannot be evicted mid-scan. No-op on a resident column; the
    /// returned guards release the pins when dropped.
    pub fn pin_rows(&self, start: usize, end: usize, out: &mut Vec<Arc<Vec<u8>>>) {
        let Some((p0, p1)) = self.physical_span(start, end) else { return };
        match &self.data {
            ColumnData::I64(v) => v.pin_range(p0, p1, out),
            ColumnData::F64(v) => v.pin_range(p0, p1, out),
            ColumnData::Bool(v) => v.pin_range(p0, p1, out),
            ColumnData::Str { codes, .. } => codes.pin_range(p0, p1, out),
        }
    }

    /// Tell the buffer pool the pages backing logical rows `[start, end)`
    /// were pruned without faulting (zone maps turned into saved I/O).
    /// No-op on a resident column.
    pub fn note_skipped_rows(&self, start: usize, end: usize) {
        let Some((p0, p1)) = self.physical_span(start, end) else { return };
        match &self.data {
            ColumnData::I64(v) => v.note_skipped_range(p0, p1),
            ColumnData::F64(v) => v.note_skipped_range(p0, p1),
            ColumnData::Bool(v) => v.note_skipped_range(p0, p1),
            ColumnData::Str { codes, .. } => codes.note_skipped_range(p0, p1),
        }
    }

    /// Encode for the on-disk format: value arrays as page-aligned
    /// segments through `sink`, everything consulted per-access (dtype,
    /// NULL map, dictionary, zone map) inline in the metadata stream.
    pub fn encode(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        w.dtype(self.dtype);
        match &self.data {
            ColumnData::I64(v) => v.encode_seg(w, sink),
            ColumnData::F64(v) => v.encode_seg(w, sink),
            ColumnData::Bool(v) => v.encode_seg(w, sink),
            ColumnData::Str { dict, codes } => {
                dict.encode(w);
                codes.encode_seg(w, sink);
            }
        }
        self.nulls.encode(w);
        w.opt(self.zones.as_deref(), |w, z| z.encode(w));
    }

    /// Decode a [`Column::encode`] stream: value arrays come back paged
    /// over `src`'s store, faulting in on first access.
    pub fn decode(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<Column> {
        let dtype = r.dtype()?;
        let data = match dtype {
            DataType::Int64 | DataType::Date => ColumnData::I64(ArrayData::decode_seg(r, src)?),
            DataType::Float64 => ColumnData::F64(ArrayData::decode_seg(r, src)?),
            DataType::Bool => ColumnData::Bool(ArrayData::decode_seg(r, src)?),
            DataType::String => {
                let dict = Dictionary::decode_stream(r)?;
                let codes = UIntArray::decode_seg(r, src)?;
                ColumnData::Str { dict, codes }
            }
        };
        let nulls = NullMap::decode(r)?;
        let zones = r.opt(ZoneMap::decode)?.map(Box::new);
        Ok(Column { dtype, data, nulls, zones })
    }
}

impl MemoryUsage for Column {
    fn memory_bytes(&self) -> usize {
        self.data_bytes()
            + self.null_overhead_bytes()
            + self.zones.as_ref().map_or(0, |z| z.memory_bytes())
    }
}

/// Incremental builder accumulating dynamically-typed values.
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    dtype: DataType,
    values: Vec<Value>,
}

impl ColumnBuilder {
    pub fn new(dtype: DataType) -> Self {
        ColumnBuilder { dtype, values: Vec::new() }
    }

    pub fn push(&mut self, v: Value) -> Result<()> {
        if let Some(dt) = v.data_type() {
            let compatible = dt == self.dtype
                || (dt == DataType::Int64 && self.dtype == DataType::Date)
                || (dt == DataType::Date && self.dtype == DataType::Int64);
            if !compatible {
                return Err(Error::TypeMismatch {
                    expected: self.dtype.to_string(),
                    found: dt.to_string(),
                });
            }
        }
        self.values.push(v);
        Ok(())
    }

    pub fn push_null(&mut self) {
        self.values.push(Value::Null);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn build(self, kind: NullKind) -> Result<Column> {
        Column::from_values(self.dtype, &self.values, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::RankParams;

    fn kinds() -> Vec<NullKind> {
        vec![
            NullKind::Uncompressed,
            NullKind::Sparse,
            NullKind::Ranges,
            NullKind::Vanilla,
            NullKind::Jacobson(RankParams::default()),
        ]
    }

    #[test]
    fn i64_column_roundtrip_all_layouts() {
        let values: Vec<Option<i64>> =
            (0..300).map(|i| if i % 4 == 0 { None } else { Some(i * 11) }).collect();
        for kind in kinds() {
            let col = Column::from_i64(DataType::Int64, &values, kind);
            assert_eq!(col.len(), values.len());
            for (i, v) in values.iter().enumerate() {
                assert_eq!(col.get_i64(i), *v, "{kind:?} at {i}");
                assert_eq!(col.is_null(i), v.is_none());
            }
        }
    }

    #[test]
    fn date_column_values() {
        let col = Column::from_i64(DataType::Date, &[Some(100), None], NullKind::Uncompressed);
        assert_eq!(col.value(0), Value::Date(100));
        assert_eq!(col.value(1), Value::Null);
    }

    #[test]
    fn string_column_dictionary_encoding() {
        let values = vec![Some("de"), Some("us"), None, Some("de"), Some("fr")];
        for kind in kinds() {
            let col = Column::from_str(&values, kind, true);
            assert_eq!(col.get_str(0), Some("de"));
            assert_eq!(col.get_str(2), None);
            assert_eq!(col.get_str(3), Some("de"));
            assert_eq!(col.get_code(0), col.get_code(3), "same string, same code");
            assert_ne!(col.get_code(0), col.get_code(4));
            let dict = col.dictionary().unwrap();
            assert_eq!(dict.len(), 3);
            assert_eq!(dict.code_width_bytes(), 1);
        }
    }

    #[test]
    fn compressed_layout_stores_only_non_nulls() {
        let values: Vec<Option<i64>> =
            (0..1000).map(|i| if i % 10 == 0 { Some(i) } else { None }).collect();
        let dense = Column::from_i64(DataType::Int64, &values, NullKind::Uncompressed);
        let sparse = Column::from_i64(DataType::Int64, &values, NullKind::Sparse);
        assert!(sparse.data_bytes() < dense.data_bytes() / 5);
    }

    #[test]
    fn f64_and_bool_columns() {
        let f = Column::from_f64(&[Some(1.5), None, Some(-2.0)], NullKind::jacobson_default());
        assert_eq!(f.get_f64(0), Some(1.5));
        assert_eq!(f.get_f64(1), None);
        assert_eq!(f.value(2), Value::Float64(-2.0));
        let b = Column::from_bool(&[Some(true), None], NullKind::Uncompressed);
        assert_eq!(b.get_bool(0), Some(true));
        assert_eq!(b.get_bool(1), None);
        // Wrong-type accessor returns None rather than panicking.
        assert_eq!(b.get_i64(0), None);
    }

    #[test]
    fn builder_enforces_types() {
        let mut b = ColumnBuilder::new(DataType::Int64);
        b.push(Value::Int64(1)).unwrap();
        b.push_null();
        assert!(b.push(Value::String("no".into())).is_err());
        let col = b.build(NullKind::Uncompressed).unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col.get_i64(0), Some(1));
        assert_eq!(col.get_i64(1), None);
    }

    #[test]
    fn all_null_string_column() {
        let values: Vec<Option<&str>> = vec![None, None];
        let col = Column::from_str(&values, NullKind::jacobson_default(), true);
        assert_eq!(col.get_str(0), None);
        assert_eq!(col.get_str(1), None);
    }

    #[test]
    fn resident_columns_report_no_pageable_bytes() {
        let col = Column::from_i64(
            DataType::Int64,
            &(0..100).map(Some).collect::<Vec<_>>(),
            NullKind::Uncompressed,
        );
        assert!(!col.is_paged());
        assert_eq!(col.pageable_bytes(), 0);
        assert_eq!(col.resident_data_bytes(), col.data_bytes());
        // pin/skip are no-ops on resident columns.
        let mut pins = Vec::new();
        col.pin_rows(0, 100, &mut pins);
        assert!(pins.is_empty());
        col.note_skipped_rows(0, 100);
    }
}

//! Fixed-width unsigned integer arrays with leading-0 suppression
//! (Section 5.1 of the paper).
//!
//! Adjacency lists store small factored ID components — label-level vertex
//! offsets and page-level positional offsets — whose maxima are known at
//! build time. Storing them in the narrowest byte width that fits the
//! maximum (`⌈log2(max)/8⌉` bytes, rounded to a power of two for aligned
//! access) is the paper's fixed-length variant of leading-0 suppression:
//! compression with **no decompression loop** — a single widening load per
//! element (Desideratum 2).
//!
//! Each width wraps an [`ArrayData`], so the same array can be fully
//! resident (the build path) or faulted in from disk pages (a reopened
//! graph) without the callers changing.

use gfcl_common::{Error, MemoryUsage, Reader, Result, Writer};

use crate::paged::{ArrayData, SegmentSink, SegmentSource};

/// An immutable-after-build array of `u64` values stored in 1, 2, 4 or
/// 8-byte codes.
#[derive(Debug, Clone, PartialEq)]
pub enum UIntArray {
    U8(ArrayData<u8>),
    U16(ArrayData<u16>),
    U32(ArrayData<u32>),
    U64(ArrayData<u64>),
}

impl UIntArray {
    /// Choose the narrowest width that can hold `max_value`.
    pub fn width_for(max_value: u64) -> usize {
        if max_value <= u8::MAX as u64 {
            1
        } else if max_value <= u16::MAX as u64 {
            2
        } else if max_value <= u32::MAX as u64 {
            4
        } else {
            8
        }
    }

    /// An empty array sized for values up to `max_value`.
    pub fn with_capacity_for(max_value: u64, cap: usize) -> Self {
        match Self::width_for(max_value) {
            1 => UIntArray::U8(Vec::with_capacity(cap).into()),
            2 => UIntArray::U16(Vec::with_capacity(cap).into()),
            4 => UIntArray::U32(Vec::with_capacity(cap).into()),
            _ => UIntArray::U64(Vec::with_capacity(cap).into()),
        }
    }

    /// Build from values, suppressing leading zeros based on the maximum
    /// value present. With `suppress = false` the full 8-byte representation
    /// is kept (the `GF-RV`/pre-`+0-SUPR` configurations of Table 2).
    pub fn from_values(values: &[u64], suppress: bool) -> Self {
        let max = if suppress { values.iter().copied().max().unwrap_or(0) } else { u64::MAX };
        let mut arr = Self::with_capacity_for(max, values.len());
        for &v in values {
            arr.push(v);
        }
        arr
    }

    /// Append a value. Panics in debug builds if it does not fit the width.
    #[inline]
    pub fn push(&mut self, v: u64) {
        match self {
            UIntArray::U8(d) => {
                debug_assert!(v <= u8::MAX as u64);
                d.push(v as u8);
            }
            UIntArray::U16(d) => {
                debug_assert!(v <= u16::MAX as u64);
                d.push(v as u16);
            }
            UIntArray::U32(d) => {
                debug_assert!(v <= u32::MAX as u64);
                d.push(v as u32);
            }
            UIntArray::U64(d) => d.push(v),
        }
    }

    /// Constant-time random access (a single widening load).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            UIntArray::U8(d) => d.get(i) as u64,
            UIntArray::U16(d) => d.get(i) as u64,
            UIntArray::U32(d) => d.get(i) as u64,
            UIntArray::U64(d) => d.get(i),
        }
    }

    /// Overwrite position `i`. The value must fit the established width.
    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        match self {
            UIntArray::U8(d) => {
                debug_assert!(v <= u8::MAX as u64);
                d.set(i, v as u8);
            }
            UIntArray::U16(d) => {
                debug_assert!(v <= u16::MAX as u64);
                d.set(i, v as u16);
            }
            UIntArray::U32(d) => {
                debug_assert!(v <= u32::MAX as u64);
                d.set(i, v as u32);
            }
            UIntArray::U64(d) => d.set(i, v),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            UIntArray::U8(d) => d.len(),
            UIntArray::U16(d) => d.len(),
            UIntArray::U32(d) => d.len(),
            UIntArray::U64(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Code width in bytes.
    pub fn width_bytes(&self) -> usize {
        match self {
            UIntArray::U8(_) => 1,
            UIntArray::U16(_) => 2,
            UIntArray::U32(_) => 4,
            UIntArray::U64(_) => 8,
        }
    }

    /// Iterate all values widened to `u64`.
    pub fn iter(&self) -> UIntArrayIter<'_> {
        UIntArrayIter { arr: self, pos: 0 }
    }

    /// Shrink backing storage to fit (called at the end of builds).
    pub fn shrink_to_fit(&mut self) {
        match self {
            UIntArray::U8(d) => d.shrink_to_fit(),
            UIntArray::U16(d) => d.shrink_to_fit(),
            UIntArray::U32(d) => d.shrink_to_fit(),
            UIntArray::U64(d) => d.shrink_to_fit(),
        }
    }

    /// Heap bytes held right now (0 for a paged array).
    pub fn resident_bytes(&self) -> usize {
        match self {
            UIntArray::U8(d) => d.resident_bytes(),
            UIntArray::U16(d) => d.resident_bytes(),
            UIntArray::U32(d) => d.resident_bytes(),
            UIntArray::U64(d) => d.resident_bytes(),
        }
    }

    /// Bytes living on disk, faulted in through the buffer pool.
    pub fn pageable_bytes(&self) -> usize {
        match self {
            UIntArray::U8(d) => d.pageable_bytes(),
            UIntArray::U16(d) => d.pageable_bytes(),
            UIntArray::U32(d) => d.pageable_bytes(),
            UIntArray::U64(d) => d.pageable_bytes(),
        }
    }

    /// Pin every page covering elements `[start, end)` (no-op when
    /// resident). See [`ArrayData::pin_range`].
    pub fn pin_range(&self, start: usize, end: usize, out: &mut Vec<std::sync::Arc<Vec<u8>>>) {
        match self {
            UIntArray::U8(d) => d.pin_range(start, end, out),
            UIntArray::U16(d) => d.pin_range(start, end, out),
            UIntArray::U32(d) => d.pin_range(start, end, out),
            UIntArray::U64(d) => d.pin_range(start, end, out),
        }
    }

    /// Account the pages covering `[start, end)` as skipped without
    /// faulting (no-op when resident).
    pub fn note_skipped_range(&self, start: usize, end: usize) {
        match self {
            UIntArray::U8(d) => d.note_skipped_range(start, end),
            UIntArray::U16(d) => d.note_skipped_range(start, end),
            UIntArray::U32(d) => d.note_skipped_range(start, end),
            UIntArray::U64(d) => d.note_skipped_range(start, end),
        }
    }

    fn width_tag(&self) -> u8 {
        self.width_bytes() as u8
    }

    /// Encode into the metadata stream itself (small arrays that stay
    /// resident after open).
    pub fn encode_inline(&self, w: &mut Writer) {
        w.u8(self.width_tag());
        match self {
            UIntArray::U8(d) => d.encode_inline(w),
            UIntArray::U16(d) => d.encode_inline(w),
            UIntArray::U32(d) => d.encode_inline(w),
            UIntArray::U64(d) => d.encode_inline(w),
        }
    }

    /// Decode an [`UIntArray::encode_inline`] stream.
    pub fn decode_inline(r: &mut Reader<'_>) -> Result<UIntArray> {
        Ok(match r.u8()? {
            1 => UIntArray::U8(ArrayData::decode_inline(r)?),
            2 => UIntArray::U16(ArrayData::decode_inline(r)?),
            4 => UIntArray::U32(ArrayData::decode_inline(r)?),
            8 => UIntArray::U64(ArrayData::decode_inline(r)?),
            t => return Err(Error::Storage(format!("invalid uint width tag {t}"))),
        })
    }

    /// Encode as a page-aligned segment (large value arrays that fault in
    /// on demand after open).
    pub fn encode_seg(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        w.u8(self.width_tag());
        match self {
            UIntArray::U8(d) => d.encode_seg(w, sink),
            UIntArray::U16(d) => d.encode_seg(w, sink),
            UIntArray::U32(d) => d.encode_seg(w, sink),
            UIntArray::U64(d) => d.encode_seg(w, sink),
        }
    }

    /// Decode an [`UIntArray::encode_seg`] stream as a paged array.
    pub fn decode_seg(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<UIntArray> {
        Ok(match r.u8()? {
            1 => UIntArray::U8(ArrayData::decode_seg(r, src)?),
            2 => UIntArray::U16(ArrayData::decode_seg(r, src)?),
            4 => UIntArray::U32(ArrayData::decode_seg(r, src)?),
            8 => UIntArray::U64(ArrayData::decode_seg(r, src)?),
            t => return Err(Error::Storage(format!("invalid uint width tag {t}"))),
        })
    }
}

/// Iterator over a [`UIntArray`], yielding `u64`.
pub struct UIntArrayIter<'a> {
    arr: &'a UIntArray,
    pos: usize,
}

impl Iterator for UIntArrayIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.pos < self.arr.len() {
            let v = self.arr.get(self.pos);
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.arr.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for UIntArrayIter<'_> {}

impl MemoryUsage for UIntArray {
    fn memory_bytes(&self) -> usize {
        self.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selection() {
        assert_eq!(UIntArray::width_for(0), 1);
        assert_eq!(UIntArray::width_for(255), 1);
        assert_eq!(UIntArray::width_for(256), 2);
        assert_eq!(UIntArray::width_for(65_535), 2);
        assert_eq!(UIntArray::width_for(65_536), 4);
        assert_eq!(UIntArray::width_for(u32::MAX as u64), 4);
        assert_eq!(UIntArray::width_for(u32::MAX as u64 + 1), 8);
    }

    #[test]
    fn roundtrip_all_widths() {
        for max in [200u64, 60_000, 4_000_000_000, u64::MAX / 2] {
            let values: Vec<u64> = (0..100).map(|i| (i * 37) % (max + 1)).collect();
            let arr = UIntArray::from_values(&values, true);
            assert_eq!(arr.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(arr.get(i), v);
            }
            let collected: Vec<u64> = arr.iter().collect();
            assert_eq!(collected, values);
        }
    }

    #[test]
    fn no_suppression_keeps_u64() {
        let arr = UIntArray::from_values(&[1, 2, 3], false);
        assert_eq!(arr.width_bytes(), 8);
        let arr = UIntArray::from_values(&[1, 2, 3], true);
        assert_eq!(arr.width_bytes(), 1);
    }

    #[test]
    fn memory_is_proportional_to_width() {
        let values: Vec<u64> = (0..1000).collect();
        let narrow = UIntArray::from_values(&values, true); // fits u16
        let wide = UIntArray::from_values(&values, false);
        assert_eq!(narrow.width_bytes(), 2);
        assert!(wide.memory_bytes() >= 4 * narrow.memory_bytes() - 64);
    }

    #[test]
    fn set_overwrites() {
        let mut arr = UIntArray::from_values(&[5, 6, 7], true);
        arr.set(1, 200);
        assert_eq!(arr.get(1), 200);
    }

    #[test]
    fn inline_encode_roundtrips_every_width() {
        for max in [100u64, 30_000, 3_000_000_000, u64::MAX / 3] {
            let values: Vec<u64> = (0..64).map(|i| (i * 97) % (max + 1)).collect();
            let arr = UIntArray::from_values(&values, true);
            let mut w = Writer::new();
            arr.encode_inline(&mut w);
            let bytes = w.into_bytes();
            let back = UIntArray::decode_inline(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back, arr);
            assert_eq!(back.width_bytes(), arr.width_bytes());
        }
    }

    #[test]
    fn bad_width_tag_is_a_storage_error() {
        let mut w = Writer::new();
        w.u8(3);
        let bytes = w.into_bytes();
        assert!(UIntArray::decode_inline(&mut Reader::new(&bytes)).is_err());
    }
}

//! Fixed-width unsigned integer arrays with leading-0 suppression
//! (Section 5.1 of the paper).
//!
//! Adjacency lists store small factored ID components — label-level vertex
//! offsets and page-level positional offsets — whose maxima are known at
//! build time. Storing them in the narrowest byte width that fits the
//! maximum (`⌈log2(max)/8⌉` bytes, rounded to a power of two for aligned
//! access) is the paper's fixed-length variant of leading-0 suppression:
//! compression with **no decompression loop** — a single widening load per
//! element (Desideratum 2).

use gfcl_common::MemoryUsage;

/// An immutable-after-build array of `u64` values stored in 1, 2, 4 or
/// 8-byte codes.
#[derive(Debug, Clone, PartialEq)]
pub enum UIntArray {
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl UIntArray {
    /// Choose the narrowest width that can hold `max_value`.
    pub fn width_for(max_value: u64) -> usize {
        if max_value <= u8::MAX as u64 {
            1
        } else if max_value <= u16::MAX as u64 {
            2
        } else if max_value <= u32::MAX as u64 {
            4
        } else {
            8
        }
    }

    /// An empty array sized for values up to `max_value`.
    pub fn with_capacity_for(max_value: u64, cap: usize) -> Self {
        match Self::width_for(max_value) {
            1 => UIntArray::U8(Vec::with_capacity(cap)),
            2 => UIntArray::U16(Vec::with_capacity(cap)),
            4 => UIntArray::U32(Vec::with_capacity(cap)),
            _ => UIntArray::U64(Vec::with_capacity(cap)),
        }
    }

    /// Build from values, suppressing leading zeros based on the maximum
    /// value present. With `suppress = false` the full 8-byte representation
    /// is kept (the `GF-RV`/pre-`+0-SUPR` configurations of Table 2).
    pub fn from_values(values: &[u64], suppress: bool) -> Self {
        let max = if suppress { values.iter().copied().max().unwrap_or(0) } else { u64::MAX };
        let mut arr = Self::with_capacity_for(max, values.len());
        for &v in values {
            arr.push(v);
        }
        arr
    }

    /// Append a value. Panics in debug builds if it does not fit the width.
    #[inline]
    pub fn push(&mut self, v: u64) {
        match self {
            UIntArray::U8(d) => {
                debug_assert!(v <= u8::MAX as u64);
                d.push(v as u8);
            }
            UIntArray::U16(d) => {
                debug_assert!(v <= u16::MAX as u64);
                d.push(v as u16);
            }
            UIntArray::U32(d) => {
                debug_assert!(v <= u32::MAX as u64);
                d.push(v as u32);
            }
            UIntArray::U64(d) => d.push(v),
        }
    }

    /// Constant-time random access (a single widening load).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            UIntArray::U8(d) => d[i] as u64,
            UIntArray::U16(d) => d[i] as u64,
            UIntArray::U32(d) => d[i] as u64,
            UIntArray::U64(d) => d[i],
        }
    }

    /// Overwrite position `i`. The value must fit the established width.
    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        match self {
            UIntArray::U8(d) => {
                debug_assert!(v <= u8::MAX as u64);
                d[i] = v as u8;
            }
            UIntArray::U16(d) => {
                debug_assert!(v <= u16::MAX as u64);
                d[i] = v as u16;
            }
            UIntArray::U32(d) => {
                debug_assert!(v <= u32::MAX as u64);
                d[i] = v as u32;
            }
            UIntArray::U64(d) => d[i] = v,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            UIntArray::U8(d) => d.len(),
            UIntArray::U16(d) => d.len(),
            UIntArray::U32(d) => d.len(),
            UIntArray::U64(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Code width in bytes.
    pub fn width_bytes(&self) -> usize {
        match self {
            UIntArray::U8(_) => 1,
            UIntArray::U16(_) => 2,
            UIntArray::U32(_) => 4,
            UIntArray::U64(_) => 8,
        }
    }

    /// Iterate all values widened to `u64`.
    pub fn iter(&self) -> UIntArrayIter<'_> {
        UIntArrayIter { arr: self, pos: 0 }
    }

    /// Shrink backing storage to fit (called at the end of builds).
    pub fn shrink_to_fit(&mut self) {
        match self {
            UIntArray::U8(d) => d.shrink_to_fit(),
            UIntArray::U16(d) => d.shrink_to_fit(),
            UIntArray::U32(d) => d.shrink_to_fit(),
            UIntArray::U64(d) => d.shrink_to_fit(),
        }
    }
}

/// Iterator over a [`UIntArray`], yielding `u64`.
pub struct UIntArrayIter<'a> {
    arr: &'a UIntArray,
    pos: usize,
}

impl Iterator for UIntArrayIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.pos < self.arr.len() {
            let v = self.arr.get(self.pos);
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.arr.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for UIntArrayIter<'_> {}

impl MemoryUsage for UIntArray {
    fn memory_bytes(&self) -> usize {
        match self {
            UIntArray::U8(d) => d.memory_bytes(),
            UIntArray::U16(d) => d.memory_bytes(),
            UIntArray::U32(d) => d.memory_bytes(),
            UIntArray::U64(d) => d.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selection() {
        assert_eq!(UIntArray::width_for(0), 1);
        assert_eq!(UIntArray::width_for(255), 1);
        assert_eq!(UIntArray::width_for(256), 2);
        assert_eq!(UIntArray::width_for(65_535), 2);
        assert_eq!(UIntArray::width_for(65_536), 4);
        assert_eq!(UIntArray::width_for(u32::MAX as u64), 4);
        assert_eq!(UIntArray::width_for(u32::MAX as u64 + 1), 8);
    }

    #[test]
    fn roundtrip_all_widths() {
        for max in [200u64, 60_000, 4_000_000_000, u64::MAX / 2] {
            let values: Vec<u64> = (0..100).map(|i| (i * 37) % (max + 1)).collect();
            let arr = UIntArray::from_values(&values, true);
            assert_eq!(arr.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(arr.get(i), v);
            }
            let collected: Vec<u64> = arr.iter().collect();
            assert_eq!(collected, values);
        }
    }

    #[test]
    fn no_suppression_keeps_u64() {
        let arr = UIntArray::from_values(&[1, 2, 3], false);
        assert_eq!(arr.width_bytes(), 8);
        let arr = UIntArray::from_values(&[1, 2, 3], true);
        assert_eq!(arr.width_bytes(), 1);
    }

    #[test]
    fn memory_is_proportional_to_width() {
        let values: Vec<u64> = (0..1000).collect();
        let narrow = UIntArray::from_values(&values, true); // fits u16
        let wide = UIntArray::from_values(&values, false);
        assert_eq!(narrow.width_bytes(), 2);
        assert!(wide.memory_bytes() >= 4 * narrow.memory_bytes() - 64);
    }

    #[test]
    fn set_overwrites() {
        let mut arr = UIntArray::from_values(&[5, 6, 7], true);
        arr.set(1, 200);
        assert_eq!(arr.get(1), 200);
    }
}

//! Fixed-length dictionary encoding for categorical string properties
//! (Section 5.1).
//!
//! A property taking `z` distinct values is stored as `⌈log2(z)/8⌉`-byte
//! codes (a [`crate::UIntArray`]), satisfying Desideratum 2: any element
//! decodes in constant time. The dictionary additionally supports
//! *predicate pre-evaluation*: a string predicate (equality, `CONTAINS`,
//! `STARTS WITH`, ...) is evaluated once per **distinct** value, producing a
//! bitmap over codes that turns per-row evaluation into a single bit probe —
//! the classic "operate on compressed data" columnar technique.

use std::collections::HashMap;

use gfcl_common::{mem::vec_string_bytes, MemoryUsage, Reader, Result, Writer};

use crate::bitmap::Bitmap;

/// An order-of-insertion string dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// Code of `s` if already interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Decode a code. Panics if out of range (codes come from this
    /// dictionary's columns, so a miss is a logic error).
    #[inline]
    pub fn decode(&self, code: u64) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values `z`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Code width in bytes: `⌈log2(z)/8⌉`, minimum 1 (fixed-length codes,
    /// padded to whole bytes as in the paper).
    pub fn code_width_bytes(&self) -> usize {
        let z = self.values.len() as u64;
        crate::UIntArray::width_for(z.saturating_sub(1))
    }

    /// Evaluate a string predicate once per distinct value, returning a
    /// bitmap indexed by code. Row-level evaluation then probes one bit.
    pub fn matching_codes(&self, pred: impl Fn(&str) -> bool) -> Bitmap {
        Bitmap::from_fn(self.values.len(), |code| pred(&self.values[code]))
    }

    /// Iterate `(code, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str()))
    }

    /// Encode as the code-ordered value list; the hash index is rebuilt on
    /// decode (it is derivable, so the file stores strings exactly once).
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.values.len());
        for v in &self.values {
            w.str(v);
        }
    }

    /// Decode a [`Dictionary::encode`] stream, rebuilding the intern index.
    /// (Named apart from [`Dictionary::decode`], which decodes a *code*.)
    pub fn decode_stream(r: &mut Reader<'_>) -> Result<Dictionary> {
        let n = r.count()?;
        let mut dict = Dictionary::new();
        for _ in 0..n {
            dict.intern(&r.str()?);
        }
        Ok(dict)
    }
}

impl MemoryUsage for Dictionary {
    fn memory_bytes(&self) -> usize {
        // Count the canonical string storage once (values); the hash index
        // is a build-time convenience also counted, since it lives as long
        // as the dictionary.
        let idx_bytes: usize =
            self.index.keys().map(|k| k.capacity() + std::mem::size_of::<(String, u32)>()).sum();
        vec_string_bytes(&self.values) + idx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(a as u64), "alpha");
        assert_eq!(d.code_of("beta"), Some(b));
        assert_eq!(d.code_of("gamma"), None);
    }

    #[test]
    fn code_width_grows_with_cardinality() {
        let mut d = Dictionary::new();
        d.intern("x");
        assert_eq!(d.code_width_bytes(), 1);
        for i in 0..300 {
            d.intern(&format!("v{i}"));
        }
        assert_eq!(d.code_width_bytes(), 2);
    }

    #[test]
    fn matching_codes_pre_evaluates_predicates() {
        let mut d = Dictionary::new();
        let c0 = d.intern("production company");
        let c1 = d.intern("distributor");
        let c2 = d.intern("co-production house");
        let m = d.matching_codes(|s| s.contains("production"));
        assert!(m.get(c0 as usize));
        assert!(!m.get(c1 as usize));
        assert!(m.get(c2 as usize));
    }

    #[test]
    fn encode_roundtrip_preserves_codes() {
        let mut d = Dictionary::new();
        for s in ["zeta", "alpha", "", "midori"] {
            d.intern(s);
        }
        let mut w = Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let back = Dictionary::decode_stream(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.len(), d.len());
        for (code, v) in d.iter() {
            assert_eq!(back.decode(code as u64), v);
            assert_eq!(back.code_of(v), Some(code));
        }
    }

    #[test]
    fn iteration_order_is_code_order() {
        let mut d = Dictionary::new();
        d.intern("b");
        d.intern("a");
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "b"), (1, "a")]);
    }
}

//! Per-block zone maps (block-level min/max synopses) for scan pruning.
//!
//! A [`ZoneMap`] summarizes a [`Column`] in fixed [`ZONE_BLOCK`]-value
//! blocks: the min/max of the non-NULL values (for `Int64`/`Date`/`Float64`
//! columns), a presence bitmap over dictionary codes (for string columns
//! whose dictionary is small enough), the true/false mix (for `Bool`
//! columns), and the NULL count. A scan with a pushed-down predicate
//! consults the zone map once per block and skips whole blocks whose
//! summary proves no row can satisfy the predicate — the classic columnar
//! scan acceleration of Vertica/MonetDB-style engines, specialized here to
//! the vertex-property columns the list-based processor scans.
//!
//! Zone maps live beside the column (not inside its compressed payload):
//! the summaries are computed through the column's logical accessors, so
//! every NULL layout (dense, sparse, Jacobson, ...) gets the same map.

use gfcl_common::{Error, MemoryUsage, Reader, Result, Writer};

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};

/// Number of values summarized per zone-map block. Equal to the default
/// scan morsel of the list-based processor, so a pruned block maps 1:1 to
/// a skipped morsel at the default geometry (both remain independently
/// tunable).
pub const ZONE_BLOCK: usize = 1024;

/// Largest dictionary for which string blocks keep a code-presence bitmap.
/// Beyond this NDV a per-block bitmap costs more memory than the pruning is
/// worth, and the block falls back to [`ZoneInfo::None`] (never pruned).
pub const ZONE_DICT_MAX_NDV: usize = 1024;

/// The type-specific summary of one block.
#[derive(Debug, Clone)]
pub enum ZoneInfo {
    /// Min/max over the non-NULL values (`Int64`/`Date` columns).
    I64 { min: i64, max: i64 },
    /// Min/max over the non-NULL, non-NaN values. When the block holds no
    /// such value, `min > max` (the empty-range sentinel). `has_nan` is set
    /// when any non-NULL value is NaN — NaN compares false under every
    /// ordered comparison, so it needs separate tracking.
    F64 { min: f64, max: f64, has_nan: bool },
    /// Which of `true`/`false` occur among the non-NULL values.
    Bool { any_true: bool, any_false: bool },
    /// Dictionary codes present in the block (string columns with
    /// NDV ≤ [`ZONE_DICT_MAX_NDV`]).
    Codes { present: Bitmap },
    /// No pruning information (all-NULL block, or an unsupported shape).
    None,
}

/// Summary of one [`ZONE_BLOCK`]-sized run of column values.
#[derive(Debug, Clone)]
pub struct ZoneEntry {
    /// Number of logical values in the block (the last block may be short).
    pub len: u32,
    /// Number of NULLs among them.
    pub null_count: u32,
    pub info: ZoneInfo,
}

impl ZoneEntry {
    /// Every value in the block is NULL.
    pub fn all_null(&self) -> bool {
        self.null_count == self.len
    }

    /// At least one value in the block is NULL.
    pub fn has_nulls(&self) -> bool {
        self.null_count > 0
    }
}

/// Block summaries of one column, in logical-position order.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    blocks: Vec<ZoneEntry>,
}

impl ZoneMap {
    /// Zone block containing logical position `pos`.
    #[inline]
    pub fn block_of(pos: usize) -> usize {
        pos / ZONE_BLOCK
    }

    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Summary of block `b`.
    #[inline]
    pub fn block(&self, b: usize) -> &ZoneEntry {
        &self.blocks[b]
    }

    pub fn blocks(&self) -> &[ZoneEntry] {
        &self.blocks
    }

    /// Build the zone map of `col` in one pass over its logical positions.
    pub fn build(col: &Column) -> ZoneMap {
        let n = col.len();
        let mut blocks = Vec::with_capacity(n.div_ceil(ZONE_BLOCK));
        let dict_ndv = col.dictionary().map(crate::dictionary::Dictionary::len);
        for start in (0..n).step_by(ZONE_BLOCK) {
            let end = (start + ZONE_BLOCK).min(n);
            blocks.push(summarize(col, start, end, dict_ndv));
        }
        ZoneMap { blocks }
    }

    /// Encode into a metadata stream. Zone maps are serialized explicitly —
    /// rebuilding one on open would fault every page of the column, which
    /// defeats the whole point of faulting on demand.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.blocks.len());
        for b in &self.blocks {
            w.u32(b.len);
            w.u32(b.null_count);
            match &b.info {
                ZoneInfo::None => w.u8(0),
                ZoneInfo::I64 { min, max } => {
                    w.u8(1);
                    w.i64(*min);
                    w.i64(*max);
                }
                ZoneInfo::F64 { min, max, has_nan } => {
                    w.u8(2);
                    w.f64(*min);
                    w.f64(*max);
                    w.bool(*has_nan);
                }
                ZoneInfo::Bool { any_true, any_false } => {
                    w.u8(3);
                    w.bool(*any_true);
                    w.bool(*any_false);
                }
                ZoneInfo::Codes { present } => {
                    w.u8(4);
                    present.encode(w);
                }
            }
        }
    }

    /// Decode a [`ZoneMap::encode`] stream.
    pub fn decode(r: &mut Reader<'_>) -> Result<ZoneMap> {
        let n = r.count()?;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.u32()?;
            let null_count = r.u32()?;
            let info = match r.u8()? {
                0 => ZoneInfo::None,
                1 => ZoneInfo::I64 { min: r.i64()?, max: r.i64()? },
                2 => ZoneInfo::F64 { min: r.f64()?, max: r.f64()?, has_nan: r.bool()? },
                3 => ZoneInfo::Bool { any_true: r.bool()?, any_false: r.bool()? },
                4 => ZoneInfo::Codes { present: Bitmap::decode(r)? },
                t => return Err(Error::Storage(format!("invalid zone-info tag {t}"))),
            };
            blocks.push(ZoneEntry { len, null_count, info });
        }
        Ok(ZoneMap { blocks })
    }
}

/// Summarize logical positions `start..end` of `col`.
fn summarize(col: &Column, start: usize, end: usize, dict_ndv: Option<usize>) -> ZoneEntry {
    let len = (end - start) as u32;
    let mut null_count = 0u32;
    let info = match col.data() {
        ColumnData::I64(_) => {
            let (mut min, mut max) = (i64::MAX, i64::MIN);
            for i in start..end {
                match col.get_i64(i) {
                    Some(v) => {
                        min = min.min(v);
                        max = max.max(v);
                    }
                    None => null_count += 1,
                }
            }
            if min > max {
                ZoneInfo::None // all NULLs
            } else {
                ZoneInfo::I64 { min, max }
            }
        }
        ColumnData::F64(_) => {
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            let mut has_nan = false;
            let mut any = false;
            for i in start..end {
                match col.get_f64(i) {
                    Some(v) if v.is_nan() => {
                        has_nan = true;
                        any = true;
                    }
                    Some(v) => {
                        min = min.min(v);
                        max = max.max(v);
                        any = true;
                    }
                    None => null_count += 1,
                }
            }
            if any {
                ZoneInfo::F64 { min, max, has_nan }
            } else {
                ZoneInfo::None
            }
        }
        ColumnData::Bool(_) => {
            let (mut any_true, mut any_false) = (false, false);
            for i in start..end {
                match col.get_bool(i) {
                    Some(true) => any_true = true,
                    Some(false) => any_false = true,
                    None => null_count += 1,
                }
            }
            if any_true || any_false {
                ZoneInfo::Bool { any_true, any_false }
            } else {
                ZoneInfo::None
            }
        }
        ColumnData::Str { .. } => {
            let ndv = dict_ndv.unwrap_or(0);
            if ndv > ZONE_DICT_MAX_NDV {
                for i in start..end {
                    if col.is_null(i) {
                        null_count += 1;
                    }
                }
                ZoneInfo::None
            } else {
                let mut present = Bitmap::zeros(ndv);
                let mut any = false;
                for i in start..end {
                    match col.get_code(i) {
                        Some(c) => {
                            present.set(c as usize);
                            any = true;
                        }
                        None => null_count += 1,
                    }
                }
                if any {
                    ZoneInfo::Codes { present }
                } else {
                    ZoneInfo::None
                }
            }
        }
    };
    ZoneEntry { len, null_count, info }
}

impl MemoryUsage for ZoneMap {
    fn memory_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                std::mem::size_of::<ZoneEntry>()
                    + match &b.info {
                        ZoneInfo::Codes { present } => present.memory_bytes(),
                        _ => 0,
                    }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nulls::NullKind;
    use gfcl_common::DataType;

    #[test]
    fn i64_blocks_cover_boundaries() {
        // 2.5 blocks of increasing values: min/max per block must reflect
        // the exact [start, end) slice, including the short tail block.
        let n = ZONE_BLOCK * 2 + ZONE_BLOCK / 2;
        let values: Vec<Option<i64>> = (0..n as i64).map(Some).collect();
        let col = Column::from_i64(DataType::Int64, &values, NullKind::None);
        let zm = ZoneMap::build(&col);
        assert_eq!(zm.n_blocks(), 3);
        for (b, e) in zm.blocks().iter().enumerate() {
            let start = (b * ZONE_BLOCK) as i64;
            let end = ((b + 1) * ZONE_BLOCK).min(n) as i64 - 1;
            assert_eq!(e.len as i64, end - start + 1);
            assert_eq!(e.null_count, 0);
            match e.info {
                ZoneInfo::I64 { min, max } => {
                    assert_eq!((min, max), (start, end), "block {b}");
                }
                _ => panic!("i64 info expected"),
            }
        }
        // A value sitting exactly on the 1023/1024 boundary lands in the
        // right block.
        assert_eq!(ZoneMap::block_of(ZONE_BLOCK - 1), 0);
        assert_eq!(ZoneMap::block_of(ZONE_BLOCK), 1);
    }

    #[test]
    fn all_null_and_single_value_blocks() {
        let mut values: Vec<Option<i64>> = vec![None; ZONE_BLOCK];
        values.extend(std::iter::repeat_n(Some(7i64), ZONE_BLOCK));
        for kind in [NullKind::Uncompressed, NullKind::Sparse, NullKind::jacobson_default()] {
            let col = Column::from_i64(DataType::Int64, &values, kind);
            let zm = ZoneMap::build(&col);
            assert_eq!(zm.n_blocks(), 2);
            assert!(zm.block(0).all_null());
            assert!(matches!(zm.block(0).info, ZoneInfo::None));
            let b1 = zm.block(1);
            assert!(!b1.has_nulls());
            assert!(matches!(b1.info, ZoneInfo::I64 { min: 7, max: 7 }));
        }
    }

    #[test]
    fn f64_nan_is_tracked_outside_min_max() {
        let values: Vec<Option<f64>> =
            vec![Some(1.0), Some(f64::NAN), Some(-3.5), None, Some(2.25)];
        let col = Column::from_f64(&values, NullKind::Uncompressed);
        let zm = ZoneMap::build(&col);
        let e = zm.block(0);
        assert_eq!(e.null_count, 1);
        match e.info {
            ZoneInfo::F64 { min, max, has_nan } => {
                assert_eq!((min, max), (-3.5, 2.25));
                assert!(has_nan);
            }
            _ => panic!("f64 info expected"),
        }
        // An all-NaN block keeps the empty-range sentinel.
        let col = Column::from_f64(&[Some(f64::NAN)], NullKind::None);
        let zm = ZoneMap::build(&col);
        match zm.block(0).info {
            ZoneInfo::F64 { min, max, has_nan } => {
                assert!(min > max, "empty non-NaN range");
                assert!(has_nan);
            }
            _ => panic!("f64 info expected"),
        }
    }

    #[test]
    fn string_blocks_keep_code_presence() {
        let values: Vec<Option<&str>> = vec![Some("a"), Some("b"), None, Some("a")];
        let col = Column::from_str(&values, NullKind::Uncompressed, true);
        let zm = ZoneMap::build(&col);
        let e = zm.block(0);
        assert_eq!(e.null_count, 1);
        match &e.info {
            ZoneInfo::Codes { present } => {
                let a = col.get_code(0).unwrap() as usize;
                let b = col.get_code(1).unwrap() as usize;
                assert!(present.get(a) && present.get(b));
                assert_eq!(present.count_ones(), 2);
            }
            _ => panic!("codes info expected"),
        }
    }

    #[test]
    fn bool_blocks_track_the_mix() {
        let col = Column::from_bool(&[Some(true), Some(true), None], NullKind::Uncompressed);
        let zm = ZoneMap::build(&col);
        match zm.block(0).info {
            ZoneInfo::Bool { any_true, any_false } => {
                assert!(any_true && !any_false);
            }
            _ => panic!("bool info expected"),
        }
    }

    #[test]
    fn encode_roundtrip_every_info_shape() {
        let i64s: Vec<Option<i64>> =
            (0..(ZONE_BLOCK * 2) as i64).map(|i| (i % 5 != 0).then_some(i * 3)).collect();
        let f64s: Vec<Option<f64>> = vec![Some(1.5), Some(f64::NAN), None, Some(-2.0)];
        let bools: Vec<Option<bool>> = vec![Some(true), None, Some(false)];
        let strs: Vec<Option<&str>> = vec![Some("x"), Some("y"), None];
        let cols = vec![
            Column::from_i64(DataType::Int64, &i64s, NullKind::jacobson_default()),
            Column::from_f64(&f64s, NullKind::Uncompressed),
            Column::from_bool(&bools, NullKind::Uncompressed),
            Column::from_str(&strs, NullKind::Uncompressed, true),
        ];
        for col in cols {
            let zm = ZoneMap::build(&col);
            let mut w = gfcl_common::Writer::new();
            zm.encode(&mut w);
            let bytes = w.into_bytes();
            let back = ZoneMap::decode(&mut gfcl_common::Reader::new(&bytes)).unwrap();
            assert_eq!(format!("{back:?}"), format!("{zm:?}"));
        }
        let mut w = gfcl_common::Writer::new();
        w.usize(1);
        w.u32(5);
        w.u32(0);
        w.u8(9);
        let bytes = w.into_bytes();
        assert!(ZoneMap::decode(&mut gfcl_common::Reader::new(&bytes)).is_err());
    }

    #[test]
    fn empty_column_has_no_blocks() {
        let col = Column::from_i64(DataType::Int64, &[], NullKind::None);
        assert_eq!(ZoneMap::build(&col).n_blocks(), 0);
    }
}

//! The resident/paged storage split behind every value array.
//!
//! The in-memory build path stores arrays as plain `Vec`s ("Resident");
//! a graph reopened from the on-disk format stores them as page-number
//! ranges into a [`PageStore`] ("Paged") and faults 64 KiB pages in on
//! demand. [`ArrayData`] is the leaf abstraction both compile to: the
//! resident arm is exactly the code the all-in-memory engine ran before
//! paging existed, so the fast tier pays nothing for the feature.
//!
//! Elements are fixed-width (1/2/4/8 bytes — every width divides
//! [`PAGE_SIZE`], so no element ever straddles a page boundary) and
//! segments are page-aligned; a random access on the paged arm is one
//! page pin plus one little-endian load.

use std::sync::Arc;

use gfcl_common::{MemoryUsage, Reader, Result, Writer};

/// On-disk page size. 64 KiB amortizes fault overhead over ~8K adjacency
/// entries while keeping a 4 MB debugging pool (`GFCL_BUFFER_MB=4`) at a
/// useful 64 frames.
pub const PAGE_SIZE: usize = 65536;

/// A source of pinned pages — implemented by the buffer pool in
/// `gfcl_storage::pager`. Pinning is Arc-based: a page stays resident (is
/// skipped by eviction) for as long as any returned `Arc` is alive.
pub trait PageStore: Send + Sync + std::fmt::Debug {
    /// Fault page `page_no` in (or hit the pool) and pin it. Fallible:
    /// a read that still fails after the store's own retry policy (and a
    /// checksum mismatch, which retries cannot heal if the medium is bad)
    /// surfaces as [`Error::Storage`](gfcl_common::Error::Storage) rather
    /// than unwinding the reader.
    fn try_pin(&self, page_no: u64) -> Result<Arc<Vec<u8>>>;

    /// Infallible pin used by the hot read path ([`ArrayData::get`] keeps
    /// its plain-value signature so an I/O error can never be confused
    /// with a NULL). On failure the error is reported to the thread's
    /// installed fault domain ([`gfcl_common::govern::fault_scope`]) — the
    /// owning query observes it at its next cancellation checkpoint — and
    /// a zeroed placeholder page is returned so the current morsel can
    /// unwind cooperatively. The placeholder can never leak into results:
    /// every governed query checks its token before publishing.
    ///
    /// Outside any fault domain there is no query to contain the failure,
    /// and serving placeholder bytes would silently corrupt whatever read
    /// them — so this panics, preserving the historical fail-loud
    /// behaviour for non-query access paths.
    fn pin(&self, page_no: u64) -> Arc<Vec<u8>> {
        match self.try_pin(page_no) {
            Ok(page) => page,
            Err(e) => {
                if gfcl_common::govern::report_io_fault(&e.to_string()) {
                    Arc::new(vec![0u8; PAGE_SIZE])
                } else {
                    // lint: allow(no fault domain installed: placeholder
                    // bytes would silently corrupt a non-query reader, so
                    // failing loud is the only safe option here)
                    panic!("unrecoverable storage fault outside any query fault domain: {e}")
                }
            }
        }
    }

    /// Account `n_pages` data pages that a pruned scan proved it never
    /// needs to fault (zone-map pruning turned into I/O skipping).
    fn note_skipped(&self, n_pages: u64);
}

/// A page-aligned byte range of the storage file holding one value array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRef {
    /// First page of the segment.
    pub start_page: u64,
    /// Pages the segment spans (its tail page may be zero-padded).
    pub n_pages: u64,
}

/// Where an array encoder writes its raw value bytes: the format layer
/// hands out page-aligned segments and records where they landed.
pub trait SegmentSink {
    /// Append `bytes` as a new page-aligned segment.
    fn write_segment(&mut self, bytes: &[u8]) -> SegRef;
}

/// Where an array decoder gets its page store from at open time.
pub trait SegmentSource {
    fn store(&self) -> Arc<dyn PageStore>;
}

/// A fixed-width element type storable in pages. Widths are powers of two
/// ≤ 8 so elements never straddle a [`PAGE_SIZE`] boundary.
pub trait PagedElem: Copy + std::fmt::Debug + 'static {
    const WIDTH: usize;
    fn write_le(self, out: &mut Vec<u8>);
    fn read_le(b: &[u8]) -> Self;
}

macro_rules! paged_elem_int {
    ($($t:ty),*) => {$(
        impl PagedElem for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(b: &[u8]) -> $t {
                // lint: allow(the [..WIDTH] slice fixes the length, so the
                // array conversion cannot fail; a short buffer panics on
                // the slice with an exact bounds message either way)
                <$t>::from_le_bytes(b[..Self::WIDTH].try_into().expect("element width"))
            }
        }
    )*};
}

paged_elem_int!(u8, u16, u32, u64, i64, f64);

impl PagedElem for bool {
    const WIDTH: usize = 1;
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(u8::from(self));
    }
    #[inline]
    fn read_le(b: &[u8]) -> bool {
        b[0] != 0
    }
}

/// A fixed-width value array that is either fully resident or faulted in
/// page-by-page through a [`PageStore`].
#[derive(Debug, Clone)]
pub enum ArrayData<T: PagedElem> {
    /// The classic in-memory `Vec` — the fast tier.
    Resident(Vec<T>),
    /// A page range of the storage file; `len` elements packed at
    /// `T::WIDTH` bytes each from the start of `seg`.
    Paged { store: Arc<dyn PageStore>, seg: SegRef, len: usize },
}

impl<T: PagedElem> ArrayData<T> {
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Resident(d) => d.len(),
            ArrayData::Paged { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Constant-time random access: an index on the resident arm, one page
    /// pin + LE load on the paged arm.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        match self {
            ArrayData::Resident(d) => d[i],
            ArrayData::Paged { store, seg, len } => {
                debug_assert!(i < *len);
                let byte = i * T::WIDTH;
                let page = store.pin(seg.start_page + (byte / PAGE_SIZE) as u64);
                // lint: allow(elements never straddle pages: WIDTH divides
                // PAGE_SIZE, so byte % PAGE_SIZE <= PAGE_SIZE - WIDTH)
                T::read_le(&page[byte % PAGE_SIZE..])
            }
        }
    }

    /// Append (resident arrays only — paged arrays are immutable).
    #[inline]
    pub fn push(&mut self, v: T) {
        match self {
            ArrayData::Resident(d) => d.push(v),
            // lint: allow(API misuse, not data-dependent: paged arrays are
            // immutable by contract and no query path mutates them)
            ArrayData::Paged { .. } => panic!("push on a paged array"),
        }
    }

    /// Overwrite position `i` (resident arrays only).
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        match self {
            ArrayData::Resident(d) => d[i] = v,
            // lint: allow(API misuse, not data-dependent: paged arrays are
            // immutable by contract and no query path mutates them)
            ArrayData::Paged { .. } => panic!("set on a paged array"),
        }
    }

    pub fn shrink_to_fit(&mut self) {
        if let ArrayData::Resident(d) = self {
            d.shrink_to_fit();
        }
    }

    pub fn iter(&self) -> impl ExactSizeIterator<Item = T> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Heap bytes held right now (a paged array's bytes live in the pool,
    /// accounted there).
    pub fn resident_bytes(&self) -> usize {
        match self {
            ArrayData::Resident(d) => d.capacity() * std::mem::size_of::<T>(),
            ArrayData::Paged { .. } => 0,
        }
    }

    /// Bytes that live on disk and fault in through the pool.
    pub fn pageable_bytes(&self) -> usize {
        match self {
            ArrayData::Resident(_) => 0,
            ArrayData::Paged { len, .. } => len * T::WIDTH,
        }
    }

    /// Pages covering elements `[start, end)` of a paged array (`None` when
    /// resident): the faulting footprint of one scan morsel.
    pub fn page_range(&self, start: usize, end: usize) -> Option<(u64, u64)> {
        match self {
            ArrayData::Resident(_) => None,
            ArrayData::Paged { seg, .. } => {
                if start >= end {
                    return Some((seg.start_page, seg.start_page));
                }
                let first = seg.start_page + (start * T::WIDTH / PAGE_SIZE) as u64;
                let last = seg.start_page + ((end - 1) * T::WIDTH / PAGE_SIZE) as u64;
                Some((first, last + 1))
            }
        }
    }

    /// Pin every page covering elements `[start, end)` into `out` so a
    /// morsel's worth of reads cannot be evicted mid-scan. No-op when
    /// resident.
    pub fn pin_range(&self, start: usize, end: usize, out: &mut Vec<Arc<Vec<u8>>>) {
        if let (ArrayData::Paged { store, .. }, Some((first, last))) =
            (self, self.page_range(start, end))
        {
            for p in first..last {
                out.push(store.pin(p));
            }
        }
    }

    /// Tell the store the pages covering `[start, end)` were proven
    /// skippable without faulting them. No-op when resident.
    pub fn note_skipped_range(&self, start: usize, end: usize) {
        if let (ArrayData::Paged { store, .. }, Some((first, last))) =
            (self, self.page_range(start, end))
        {
            store.note_skipped(last - first);
        }
    }

    /// The packed little-endian value bytes (the segment payload).
    pub fn to_value_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() * T::WIDTH);
        for i in 0..self.len() {
            self.get(i).write_le(&mut out);
        }
        out
    }

    /// Encode into the metadata stream itself (small arrays that must stay
    /// resident after open — NULL-map internals, CSR offsets).
    pub fn encode_inline(&self, w: &mut Writer) {
        w.usize(self.len());
        w.bytes(&self.to_value_bytes());
    }

    /// Decode an [`ArrayData::encode_inline`] stream — always resident.
    pub fn decode_inline(r: &mut Reader<'_>) -> Result<ArrayData<T>> {
        let n = r.count()?;
        let raw = r.bytes(n * T::WIDTH)?;
        let mut d = Vec::with_capacity(n);
        for i in 0..n {
            // lint: allow(bytes(n * WIDTH) above bounds-checked the whole
            // span, so every i * WIDTH start is in range)
            d.push(T::read_le(&raw[i * T::WIDTH..]));
        }
        Ok(ArrayData::Resident(d))
    }

    /// Encode as a page-aligned segment: value bytes go to `sink`, the
    /// segment location into the metadata stream.
    pub fn encode_seg(&self, w: &mut Writer, sink: &mut dyn SegmentSink) {
        w.usize(self.len());
        let seg = sink.write_segment(&self.to_value_bytes());
        w.u64(seg.start_page);
        w.u64(seg.n_pages);
    }

    /// Decode an [`ArrayData::encode_seg`] stream as a paged array over
    /// `src`'s store.
    pub fn decode_seg(r: &mut Reader<'_>, src: &dyn SegmentSource) -> Result<ArrayData<T>> {
        let len = r.usize()?;
        let seg = SegRef { start_page: r.u64()?, n_pages: r.u64()? };
        let need = (len * T::WIDTH).div_ceil(PAGE_SIZE) as u64;
        if seg.n_pages < need {
            return Err(gfcl_common::Error::Storage(format!(
                "segment at page {} spans {} pages but {len} elements need {need}",
                seg.start_page, seg.n_pages
            )));
        }
        Ok(ArrayData::Paged { store: src.store(), seg, len })
    }
}

impl<T: PagedElem> From<Vec<T>> for ArrayData<T> {
    fn from(d: Vec<T>) -> ArrayData<T> {
        ArrayData::Resident(d)
    }
}

impl<T: PagedElem + PartialEq> PartialEq for ArrayData<T> {
    fn eq(&self, other: &ArrayData<T>) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl<T: PagedElem> MemoryUsage for ArrayData<T> {
    fn memory_bytes(&self) -> usize {
        self.resident_bytes()
    }
}

/// An in-memory [`PageStore`]/[`SegmentSink`] pair used by unit tests of
/// every encode/decode implementation (the production pair is the storage
/// crate's file-backed buffer pool and format writer).
pub mod mem {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A page store over an in-memory "file" of segments.
    #[derive(Debug, Default)]
    pub struct MemStore {
        pages: Mutex<Vec<Arc<Vec<u8>>>>,
        skipped: AtomicU64,
    }

    impl MemStore {
        pub fn new() -> Arc<MemStore> {
            Arc::new(MemStore::default())
        }

        /// Pages accounted as skipped via [`PageStore::note_skipped`].
        pub fn skipped(&self) -> u64 {
            self.skipped.load(Ordering::Relaxed)
        }

        /// Pages written so far.
        pub fn n_pages(&self) -> usize {
            // lint: allow(test-support store; a poisoned lock means a test
            // already panicked and re-panicking is correct)
            self.pages.lock().unwrap().len()
        }
    }

    impl PageStore for MemStore {
        fn try_pin(&self, page_no: u64) -> Result<Arc<Vec<u8>>> {
            // lint: allow(test-support store: poisoned-lock re-panic is
            // correct, and page counts stay far below usize::MAX)
            let pages = self.pages.lock().unwrap();
            // lint: allow(test-support store; counts far below usize::MAX)
            match pages.get(page_no as usize) {
                Some(p) => Ok(Arc::clone(p)),
                None => Err(gfcl_common::Error::Storage(format!(
                    "page {page_no} beyond the {} pages of the in-memory store",
                    pages.len()
                ))),
            }
        }
        fn note_skipped(&self, n_pages: u64) {
            self.skipped.fetch_add(n_pages, Ordering::Relaxed);
        }
    }

    /// Writes segments into a [`MemStore`].
    pub struct MemSink(pub Arc<MemStore>);

    impl SegmentSink for MemSink {
        fn write_segment(&mut self, bytes: &[u8]) -> SegRef {
            // lint: allow(test-support store; a poisoned lock means a test
            // already panicked and re-panicking is correct)
            let mut pages = self.0.pages.lock().unwrap();
            let start_page = pages.len() as u64;
            for chunk in bytes.chunks(PAGE_SIZE) {
                let mut page = chunk.to_vec();
                page.resize(PAGE_SIZE, 0);
                pages.push(Arc::new(page));
            }
            if bytes.is_empty() {
                pages.push(Arc::new(vec![0; PAGE_SIZE]));
            }
            SegRef { start_page, n_pages: (pages.len() as u64) - start_page }
        }
    }

    impl SegmentSource for Arc<MemStore> {
        fn store(&self) -> Arc<dyn PageStore> {
            Arc::clone(self) as Arc<dyn PageStore>
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mem::{MemSink, MemStore};
    use super::*;

    fn paged_roundtrip<T: PagedElem + PartialEq>(values: Vec<T>) -> ArrayData<T> {
        let store = MemStore::new();
        let resident = ArrayData::Resident(values);
        let mut w = Writer::new();
        resident.encode_seg(&mut w, &mut MemSink(Arc::clone(&store)));
        let bytes = w.into_bytes();
        let paged = ArrayData::<T>::decode_seg(&mut Reader::new(&bytes), &store).unwrap();
        assert_eq!(paged, resident);
        paged
    }

    #[test]
    fn paged_equals_resident_across_types() {
        paged_roundtrip::<u8>((0..=255).collect());
        paged_roundtrip::<u16>((0..40_000).map(|i| i as u16).collect());
        paged_roundtrip::<u32>((0..100_000).map(|i| i * 7919).collect());
        paged_roundtrip::<u64>((0..9000).map(|i| i * 0x1234_5678).collect());
        paged_roundtrip::<i64>((-500..500).map(|i| i * 3).collect());
        paged_roundtrip::<f64>((0..300).map(|i| i as f64 * 0.5).collect());
        paged_roundtrip::<bool>((0..1000).map(|i| i % 3 == 0).collect());
    }

    #[test]
    fn multi_page_access_crosses_boundaries() {
        // 3 pages of u32: exercise both sides of each page edge.
        let n = 3 * PAGE_SIZE / 4;
        let paged = paged_roundtrip::<u32>((0..n as u32).collect());
        for i in [0, 16383, 16384, 32767, 32768, n - 1] {
            assert_eq!(paged.get(i), i as u32);
        }
        assert_eq!(paged.page_range(0, n), paged.page_range(0, n));
        assert_eq!(paged.page_range(0, 1).unwrap().1 - paged.page_range(0, 1).unwrap().0, 1);
        let (f, l) = paged.page_range(16000, 17000).unwrap();
        assert_eq!(l - f, 2, "a straddling element range pins both pages");
    }

    #[test]
    fn inline_roundtrip_is_resident() {
        let arr = ArrayData::Resident(vec![1u64, 2, 3]);
        let mut w = Writer::new();
        arr.encode_inline(&mut w);
        let bytes = w.into_bytes();
        let back = ArrayData::<u64>::decode_inline(&mut Reader::new(&bytes)).unwrap();
        assert!(matches!(back, ArrayData::Resident(_)));
        assert_eq!(back, arr);
    }

    #[test]
    fn truncated_segment_metadata_is_an_error() {
        let store = MemStore::new();
        let mut w = Writer::new();
        ArrayData::Resident((0..100u64).collect()).encode_seg(&mut w, &mut MemSink(store.clone()));
        let bytes = w.into_bytes();
        assert!(ArrayData::<u64>::decode_seg(&mut Reader::new(&bytes[..10]), &store).is_err());
        // A segment too small for its element count is rejected.
        let mut w = Writer::new();
        w.usize(1_000_000);
        w.u64(0);
        w.u64(1);
        let bytes = w.into_bytes();
        assert!(ArrayData::<u64>::decode_seg(&mut Reader::new(&bytes), &store).is_err());
    }

    #[test]
    fn skip_accounting_reaches_the_store() {
        let store = MemStore::new();
        let mut w = Writer::new();
        ArrayData::Resident((0..50_000u64).collect())
            .encode_seg(&mut w, &mut MemSink(store.clone()));
        let bytes = w.into_bytes();
        let paged = ArrayData::<u64>::decode_seg(&mut Reader::new(&bytes), &store).unwrap();
        paged.note_skipped_range(0, 50_000);
        assert_eq!(store.skipped(), 7);
        let mut pins = Vec::new();
        paged.pin_range(0, 10_000, &mut pins);
        assert_eq!(pins.len(), 2);
    }

    #[test]
    fn resident_mutation_still_works() {
        let mut arr: ArrayData<u16> = vec![1u16, 2, 3].into();
        arr.push(4);
        arr.set(0, 9);
        assert_eq!(arr.get(0), 9);
        assert_eq!(arr.len(), 4);
        assert!(arr.page_range(0, 4).is_none());
        assert_eq!(arr.pageable_bytes(), 0);
        assert!(arr.resident_bytes() >= 8);
    }
}

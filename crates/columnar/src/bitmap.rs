//! A plain bit vector used as the NULL/validity bitmap of columns and as the
//! bit-string component of the paper's Jacobson-indexed NULL compression.

use gfcl_common::{Error, MemoryUsage, Reader, Result, Writer};

/// A fixed-length bit vector backed by `u64` words.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bm = Bitmap::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    /// Build from a predicate over `0..len`.
    pub fn from_fn(len: usize, f: impl Fn(usize) -> bool) -> Self {
        let mut bm = Bitmap::zeros(len);
        for i in 0..len {
            if f(i) {
                bm.set(i);
            }
        }
        bm
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly before position `i`, computed by a linear
    /// scan over the words. This is deliberately O(i/64): it is the access
    /// path of Abadi's *vanilla* bit-string scheme, which the paper shows is
    /// over 20x slower than the Jacobson-indexed rank (Figure 10). The fast
    /// path lives in [`crate::rank::JacobsonRank`].
    pub fn rank_scan(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word = i >> 6;
        let mut count = 0usize;
        for w in &self.words[..word] {
            count += w.count_ones() as usize;
        }
        let rem = i & 63;
        if rem != 0 {
            count += (self.words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Extract `width <= 32` bits starting at bit position `pos` (LSB-first),
    /// used by the Jacobson index to fetch a chunk's bit string.
    #[inline]
    pub fn bits_at(&self, pos: usize, width: usize) -> u32 {
        debug_assert!(width <= 32 && width > 0);
        let word = pos >> 6;
        let shift = pos & 63;
        let lo = self.words[word] >> shift;
        let val = if shift + width > 64 && word + 1 < self.words.len() {
            lo | (self.words[word + 1] << (64 - shift))
        } else {
            lo
        };
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        (val as u32) & mask
    }

    /// Iterate over the positions of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Encode into a metadata stream: bit length + backing words.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.len);
        for &word in &self.words {
            w.u64(word);
        }
    }

    /// Decode a [`Bitmap::encode`] stream.
    pub fn decode(r: &mut Reader<'_>) -> Result<Bitmap> {
        let len = r.usize()?;
        let n_words = len.div_ceil(64);
        if n_words * 8 > r.remaining() {
            return Err(Error::Storage(format!("truncated bitmap of {len} bits")));
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        Ok(Bitmap { words, len })
    }
}

impl MemoryUsage for Bitmap {
    fn memory_bytes(&self) -> usize {
        self.words.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::zeros(130);
        assert!(!bm.get(0));
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(63) && !bm.get(65));
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn rank_scan_matches_naive() {
        let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let bm = Bitmap::from_bools(&bits);
        for i in 0..=200 {
            let naive = bits[..i].iter().filter(|&&b| b).count();
            assert_eq!(bm.rank_scan(i), naive, "rank at {i}");
        }
    }

    #[test]
    fn bits_at_crosses_word_boundaries() {
        let mut bm = Bitmap::zeros(128);
        // Set bits 62, 63, 64, 66.
        for i in [62, 63, 64, 66] {
            bm.set(i);
        }
        // Reading 8 bits starting at 60: bits 60..68 = 0,0,1,1,1,0,1,0 (LSB first).
        assert_eq!(bm.bits_at(60, 8), 0b0101_1100);
        assert_eq!(bm.bits_at(62, 2), 0b11);
        assert_eq!(bm.bits_at(64, 4), 0b0101);
    }

    #[test]
    fn from_fn_and_iter_ones() {
        let bm = Bitmap::from_fn(10, |i| i % 2 == 1);
        let ones: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(ones, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn encode_roundtrip_and_truncation() {
        let bm = Bitmap::from_fn(150, |i| i % 5 == 0);
        let mut w = Writer::new();
        bm.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(Bitmap::decode(&mut Reader::new(&bytes)).unwrap(), bm);
        assert!(Bitmap::decode(&mut Reader::new(&bytes[..12])).is_err());
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::zeros(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.rank_scan(0), 0);
    }
}

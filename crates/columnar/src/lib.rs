//! Columnar primitives and compression for the `gfcl` graph DBMS
//! (Sections 4.1 and 5 of the paper).
//!
//! Desideratum 2 drives every design here: because GDBMS access patterns mix
//! short sequential runs (adjacency lists) with random accesses (vertex
//! properties), **decompressing an arbitrary element of a compressed block
//! must take constant time**. All schemes in this crate are therefore
//! fixed-length-code schemes:
//!
//! * [`UIntArray`] — leading-0 suppression: unsigned integers stored in the
//!   narrowest of 1/2/4/8-byte codes that fits the maximum value.
//! * [`Dictionary`] — fixed-length dictionary encoding of categorical
//!   strings into `⌈log2(z)/8⌉`-byte codes, with predicate evaluation over
//!   the dictionary (evaluate once per distinct value).
//! * [`JacobsonRank`] — a simplified Jacobson bit-vector index giving
//!   constant-time rank queries over a NULL bitmap (Figure 7).
//! * [`NullMap`] — the design space of NULL-compression layouts from Abadi
//!   plus the paper's Jacobson-enhanced layout, all behind one API that maps
//!   logical positions to physical positions in a dense non-NULL array.
//! * [`Column`] — a typed column combining physical values with a
//!   [`NullMap`]; the building block for vertex columns, edge columns and
//!   property pages.
//! * [`ZoneMap`] — per-block min/max (and code-presence) synopses over a
//!   column, letting scans with pushed-down predicates skip whole blocks
//!   without touching the data.
//! * [`paged`] — the [`ArrayData`] value-storage abstraction: resident
//!   vectors for built graphs, on-demand page faults through a
//!   [`PageStore`] (the storage crate's buffer pool) for reopened ones.

pub mod bitmap;
pub mod column;
pub mod dictionary;
pub mod nulls;
pub mod paged;
pub mod rank;
pub mod uint_array;
pub mod zonemap;

pub use bitmap::Bitmap;
pub use column::{Column, ColumnBuilder, ColumnData};
pub use dictionary::Dictionary;
pub use nulls::{NullKind, NullMap};
pub use paged::{ArrayData, PageStore, PagedElem, SegRef, SegmentSink, SegmentSource, PAGE_SIZE};
pub use rank::{JacobsonRank, RankParams};
pub use uint_array::UIntArray;
pub use zonemap::{ZoneEntry, ZoneInfo, ZoneMap, ZONE_BLOCK};

// Columns and their compression structures are read concurrently by the
// parallel list-based processor; keep them `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Bitmap>();
    assert_send_sync::<Column>();
    assert_send_sync::<Dictionary>();
    assert_send_sync::<NullMap>();
    assert_send_sync::<JacobsonRank>();
    assert_send_sync::<UIntArray>();
    assert_send_sync::<ZoneMap>();
    assert_send_sync::<ArrayData<i64>>();
    assert_send_sync::<SegRef>();
};

//! Property-based tests for the columnar compression invariants
//! (DESIGN.md §5, invariants 1–3).

use gfcl_columnar::{Bitmap, Column, JacobsonRank, NullKind, NullMap, RankParams, UIntArray};
use gfcl_common::DataType;
use proptest::prelude::*;

fn null_kinds() -> Vec<NullKind> {
    vec![
        NullKind::Uncompressed,
        NullKind::Sparse,
        NullKind::Ranges,
        NullKind::Vanilla,
        NullKind::Jacobson(RankParams::default()),
        NullKind::Jacobson(RankParams::new(8, 8).unwrap()),
        NullKind::Jacobson(RankParams::new(4, 16).unwrap()),
    ]
}

proptest! {
    /// Invariant 1: UIntArray round-trips any u64 values at any width.
    #[test]
    fn uint_array_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..300),
                            shift in 0u32..56) {
        // Scale values down so different widths get exercised.
        let scaled: Vec<u64> = values.iter().map(|v| v >> shift).collect();
        let arr = UIntArray::from_values(&scaled, true);
        prop_assert_eq!(arr.len(), scaled.len());
        for (i, &v) in scaled.iter().enumerate() {
            prop_assert_eq!(arr.get(i), v);
        }
        let wide = UIntArray::from_values(&scaled, false);
        prop_assert_eq!(wide.width_bytes(), 8);
        for (i, &v) in scaled.iter().enumerate() {
            prop_assert_eq!(wide.get(i), v);
        }
    }

    /// Invariant 2: Jacobson rank equals the naive popcount for every
    /// position, every parameterization.
    #[test]
    fn jacobson_rank_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..2000)) {
        let bm = Bitmap::from_bools(&bits);
        for (c, m) in [(16u32, 16u32), (8, 8), (8, 16), (16, 8), (4, 8)] {
            let idx = JacobsonRank::build(&bm, RankParams::new(c, m).unwrap());
            let mut naive = 0usize;
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(idx.rank(&bm, i), naive, "c={} m={} i={}", c, m, i);
                if b { naive += 1; }
            }
            prop_assert_eq!(idx.count_ones(), naive);
        }
    }

    /// Invariant 2 (bis): rank_scan agrees with Jacobson rank.
    #[test]
    fn rank_scan_agrees_with_jacobson(bits in proptest::collection::vec(any::<bool>(), 1..1500)) {
        let bm = Bitmap::from_bools(&bits);
        let idx = JacobsonRank::build(&bm, RankParams::default());
        for i in 0..bits.len() {
            prop_assert_eq!(bm.rank_scan(i), idx.rank(&bm, i));
        }
    }

    /// Invariant 3: every NULL layout agrees with the uncompressed column.
    #[test]
    fn null_layouts_agree(values in proptest::collection::vec(
        proptest::option::weighted(0.6, any::<i64>()), 0..500)) {
        let reference = Column::from_i64(DataType::Int64, &values, NullKind::Uncompressed);
        for kind in null_kinds() {
            let col = Column::from_i64(DataType::Int64, &values, kind);
            prop_assert_eq!(col.len(), reference.len());
            for i in 0..values.len() {
                prop_assert_eq!(col.get_i64(i), reference.get_i64(i));
                prop_assert_eq!(col.is_null(i), reference.is_null(i));
            }
        }
    }

    /// Invariant 3 for strings: dictionary encoding + every NULL layout
    /// round-trips string columns.
    #[test]
    fn string_columns_roundtrip(values in proptest::collection::vec(
        proptest::option::weighted(0.7, "[a-e]{0,4}"), 0..200)) {
        for kind in null_kinds() {
            let col = Column::from_str(&values, kind, true);
            for (i, v) in values.iter().enumerate() {
                prop_assert_eq!(col.get_str(i), v.as_deref());
            }
        }
    }

    /// NullMap::physical is a bijection between valid logical positions and
    /// 0..count_valid, in order.
    #[test]
    fn physical_positions_are_dense_and_ordered(valid in proptest::collection::vec(any::<bool>(), 0..600)) {
        for kind in [NullKind::Sparse, NullKind::Ranges, NullKind::Vanilla,
                     NullKind::jacobson_default()] {
            let map = NullMap::build(&valid, kind);
            let mut expected = 0usize;
            for (i, &v) in valid.iter().enumerate() {
                if v {
                    prop_assert_eq!(map.physical(i), Some(expected));
                    expected += 1;
                } else {
                    prop_assert_eq!(map.physical(i), None);
                }
            }
            prop_assert_eq!(map.count_valid(), expected);
        }
    }
}

//! Interactive text-query shell over the frontend: type a query, see rows;
//! prefix with `:explain` to see the optimizer's plan instead.
//!
//! ```sh
//! cargo run --release --example query_repl              # Figure 1 example graph
//! cargo run --release --example query_repl -- social 200  # LDBC-like, 200 persons
//! cargo run --release --example query_repl -- movies 100  # IMDb-like JOB graph
//! ```
//!
//! Commands:
//!
//! - `:schema`           — list labels and their typed properties
//! - `:explain <query>`  — compile and show the EXPLAIN rendering
//! - `:quit`             — exit (also Ctrl-D)
//!
//! Anything else is compiled (parse → bind) and executed on the list-based
//! GF-CL engine; frontend errors print their caret diagnostics.

use std::io::{BufRead, Write as _};
use std::sync::Arc;

use gfcl::datagen::{MovieParams, SocialParams};
use gfcl::{ColumnarGraph, Engine, GfClEngine, QueryOutput, RawGraph, StorageConfig};

fn build_graph() -> RawGraph {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args.get(1).and_then(|s| s.parse().ok());
    match args.first().map(String::as_str) {
        Some("social") => gfcl::datagen::generate_social(SocialParams::scale(scale.unwrap_or(100))),
        Some("movies") => gfcl::datagen::generate_movies(MovieParams::scale(scale.unwrap_or(100))),
        Some(other) => {
            eprintln!("unknown dataset {other:?} (expected `social` or `movies`); using example");
            RawGraph::example()
        }
        None => RawGraph::example(),
    }
}

fn print_schema(engine: &GfClEngine) {
    let catalog = engine.catalog();
    println!("node labels:");
    for def in catalog.vertex_labels() {
        let props: Vec<String> =
            def.properties.iter().map(|p| format!("{}: {:?}", p.name, p.dtype)).collect();
        println!("  ({}) {{{}}}", def.name, props.join(", "));
    }
    println!("edge labels:");
    for def in catalog.edge_labels() {
        let props: Vec<String> =
            def.properties.iter().map(|p| format!("{}: {:?}", p.name, p.dtype)).collect();
        println!(
            "  ({})-[{}]->({}) {{{}}}",
            catalog.vertex_label(def.src).name,
            def.name,
            catalog.vertex_label(def.dst).name,
            props.join(", ")
        );
    }
}

fn print_output(out: &QueryOutput) {
    match out {
        QueryOutput::Rows { header, rows } => {
            println!("{}", header.join(" | "));
            for r in rows {
                let cells: Vec<String> = r.iter().map(ToString::to_string).collect();
                println!("{}", cells.join(" | "));
            }
            println!("({} rows)", rows.len());
        }
        other => println!("{other:?}"),
    }
}

fn main() {
    let raw = build_graph();
    let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph);
    println!(
        "{} vertices, {} edges loaded. `:schema` lists labels, `:explain <q>` shows the plan,\n\
         `:quit` exits. Example:\n  MATCH (a:PERSON)-[e:WORKAT]->(b:ORG) RETURN a.name, b.name",
        raw.total_vertices(),
        raw.total_edges()
    );

    let stdin = std::io::stdin();
    loop {
        print!("gql> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":schema" {
            print_schema(&engine);
            continue;
        }
        if let Some(text) = line.strip_prefix(":explain") {
            match gfcl::frontend::compile(text.trim(), engine.catalog()) {
                Ok(q) => match engine.explain(&q) {
                    Ok(plan) => print!("{plan}"),
                    Err(e) => println!("plan error: {e}"),
                },
                Err(e) => println!("{e}"),
            }
            continue;
        }
        match gfcl::query_on(&engine, line) {
            Ok(out) => print_output(&out),
            Err(e) => println!("{e}"),
        }
    }
}

//! Friend-of-friend recommendation analytics over an LDBC-like social
//! network — the many-to-many join workload the paper's intro motivates —
//! comparing the list-based processor against the Volcano baselines.
//!
//! ```sh
//! cargo run --release --example social_recommendations
//! ```

use std::sync::Arc;
use std::time::Instant;

use gfcl::datagen::{generate_social, SocialParams};
use gfcl::query::{col, eq, ge, lit, lit_date, PatternQuery};
use gfcl::{ColumnarGraph, Engine, GfClEngine, GfCvEngine, GfRvEngine, RowGraph, StorageConfig};

fn main() {
    let persons = 2_000;
    println!("generating LDBC-like social network with {persons} persons ...");
    let raw = generate_social(SocialParams::scale(persons));
    println!("  {} vertices, {} edges", raw.total_vertices(), raw.total_edges());

    let columnar = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let row = Arc::new(RowGraph::build(&raw).unwrap());
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(GfClEngine::new(columnar.clone())),
        Box::new(GfCvEngine::new(columnar)),
        Box::new(GfRvEngine::new(row)),
    ];

    // 1. How many friend-of-friend candidates does person 42 have?
    let fof = PatternQuery::builder()
        .node("p", "Person")
        .node("f", "Person")
        .node("ff", "Person")
        .edge("k1", "knows", "p", "f")
        .edge("k2", "knows", "f", "ff")
        .filter(eq(col("p", "id"), lit(42)))
        .returns_count()
        .build();

    // 2. Recently active candidates: friends-of-friends who wrote a recent
    //    comment (a 3-step many-to-many join).
    let active = PatternQuery::builder()
        .node("p", "Person")
        .node("f", "Person")
        .node("ff", "Person")
        .node("c", "Comment")
        .edge("k1", "knows", "p", "f")
        .edge("k2", "knows", "f", "ff")
        .edge("hc", "hasCreator", "c", "ff")
        .filter(eq(col("p", "id"), lit(42)))
        .filter(ge(col("c", "creationDate"), lit_date(1_450_000_000)))
        .returns_count()
        .build();

    // 3. Global 2-hop reach — the COUNT(*) aggregation where factorized
    //    processing shines (Section 8.6).
    let reach = PatternQuery::builder()
        .node("a", "Person")
        .node("b", "Person")
        .node("c", "Person")
        .edge("k1", "knows", "a", "b")
        .edge("k2", "knows", "b", "c")
        .returns_count()
        .build();

    for (name, query) in [
        ("friend-of-friend candidates for p42", &fof),
        ("recently active candidates", &active),
        ("global 2-hop reach", &reach),
    ] {
        println!("\n== {name} ==");
        for engine in &engines {
            let t0 = Instant::now();
            let out = engine.execute(query).unwrap();
            let dt = t0.elapsed();
            println!("  {:6}  count={:<12}  {:?}", engine.name(), out.cardinality(), dt);
        }
    }
}

//! Quickstart: build the paper's Figure 1 running example graph, run
//! Example 1's query on all four engines, and inspect the storage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use gfcl::query::{col, gt, lit, lt, PatternQuery};
use gfcl::{
    human_bytes, ColumnarGraph, Engine, GfClEngine, GfCvEngine, GfRvEngine, MemoryUsage,
    QueryOutput, RawGraph, RelEngine, RowGraph, StorageConfig,
};

fn main() {
    // The running example: 4 PERSONs, 2 ORGs, FOLLOWS/STUDYAT/WORKAT edges.
    let raw = RawGraph::example();
    println!(
        "graph: {} vertices, {} edges, {} vertex labels, {} edge labels",
        raw.total_vertices(),
        raw.total_edges(),
        raw.catalog.vertex_label_count(),
        raw.catalog.edge_label_count()
    );

    // Build both storage layouts.
    let columnar = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let row = Arc::new(RowGraph::build(&raw).unwrap());
    println!(
        "columnar storage: {}   row storage: {}",
        human_bytes(columnar.memory_bytes()),
        human_bytes(row.memory_bytes())
    );

    // Example 1 of the paper:
    //   MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
    //   WHERE a.age > 22 AND b.estd < 2015 RETURN *
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "ORG")
        .edge("e", "WORKAT", "a", "b")
        .filter(gt(col("a", "age"), lit(22)))
        .filter(lt(col("b", "estd"), lit(2015)))
        .returns(&[("a", "name"), ("a", "age"), ("b", "name"), ("e", "doj")])
        .build();

    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(GfClEngine::new(columnar.clone())),
        Box::new(GfCvEngine::new(columnar.clone())),
        Box::new(GfRvEngine::new(row)),
        Box::new(RelEngine::new(columnar)),
    ];
    for engine in &engines {
        let out = engine.execute(&q).unwrap();
        println!("\n[{}]", engine.name());
        match out {
            QueryOutput::Rows { header, rows } => {
                println!("  {}", header.join(" | "));
                for r in rows {
                    let cells: Vec<String> = r.iter().map(ToString::to_string).collect();
                    println!("  {}", cells.join(" | "));
                }
            }
            other => println!("  {other:?}"),
        }
    }
}

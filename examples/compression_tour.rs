//! A tour of the columnar compression layer (Sections 4–5): leading-0
//! suppression, dictionary encoding, and the NULL-compression design space
//! with the Jacobson rank index, measured on a sparse column.
//!
//! ```sh
//! cargo run --release --example compression_tour
//! ```

use std::time::Instant;

use gfcl::columnar::{Column, NullKind, RankParams, UIntArray};
use gfcl::{human_bytes, DataType, MemoryUsage};

fn main() {
    // ---- Leading-0 suppression (Section 5.1) ----
    println!("== leading-0 suppression ==");
    let offsets: Vec<u64> = (0..1_000_000u64).map(|i| i % 50_000).collect();
    let wide = UIntArray::from_values(&offsets, false);
    let narrow = UIntArray::from_values(&offsets, true);
    println!(
        "  1M positional offsets < 50K:  u64 = {}   suppressed({}B codes) = {}",
        human_bytes(wide.memory_bytes()),
        narrow.width_bytes(),
        human_bytes(narrow.memory_bytes())
    );

    // ---- Dictionary encoding ----
    println!("\n== dictionary encoding ==");
    let browsers = ["Chrome", "Firefox", "Safari", "Internet Explorer", "Opera"];
    let values: Vec<Option<&str>> =
        (0..1_000_000).map(|i| Some(browsers[i % browsers.len()])).collect();
    let col = Column::from_str(&values, NullKind::None, true);
    println!(
        "  1M browser strings -> {} ({} distinct values, {}-byte codes)",
        human_bytes(col.memory_bytes()),
        col.dictionary().unwrap().len(),
        col.dictionary().unwrap().code_width_bytes()
    );
    // Predicate pre-evaluation: one pass over 5 distinct values.
    let dict = col.dictionary().unwrap();
    let matching = dict.matching_codes(|s| s.contains("e"));
    println!(
        "  CONTAINS 'e' pre-evaluated over the dictionary: {} matching codes",
        matching.count_ones()
    );

    // ---- NULL compression design space (Section 5.3, Figure 10) ----
    println!("\n== NULL compression at 30% density ==");
    let n = 2_000_000usize;
    let sparse: Vec<Option<i64>> =
        (0..n).map(|i| ((i * 2654435761) % 10 < 3).then_some(i as i64)).collect();
    let layouts: Vec<(&str, NullKind)> = vec![
        ("Uncompressed", NullKind::Uncompressed),
        ("Sparse positions (Abadi #1)", NullKind::Sparse),
        ("Range pairs    (Abadi #2)", NullKind::Ranges),
        ("Vanilla bitmap (Abadi #3)", NullKind::Vanilla),
        ("J-NULL (Jacobson, m=c=16)", NullKind::Jacobson(RankParams::default())),
    ];
    println!("  {:<28} {:>10} {:>12} {:>16}", "layout", "total", "overhead", "1M random reads");
    for (name, kind) in layouts {
        let col = Column::from_i64(DataType::Int64, &sparse, kind);
        // Time random access (Desideratum 2: must be constant time).
        let t0 = Instant::now();
        let mut checksum = 0i64;
        let mut idx = 1usize;
        for _ in 0..1_000_000 {
            idx = (idx * 48271) % n;
            if let Some(v) = col.get_i64(idx) {
                checksum = checksum.wrapping_add(v);
            }
        }
        let dt = t0.elapsed();
        println!(
            "  {:<28} {:>10} {:>12} {:>13.1?}  (checksum {})",
            name,
            human_bytes(col.memory_bytes()),
            human_bytes(col.null_overhead_bytes()),
            dt,
            checksum % 1000
        );
    }
    println!("\nNote how the vanilla bitmap needs a linear rank scan per read while");
    println!("the Jacobson index answers in constant time for one extra bit/element.");
}

//! JOB-style star joins over an IMDb-like movie graph: run a selection of
//! the 33 JOB queries on all four engines and compare runtimes — the
//! Section 8.7.2 experiment in miniature.
//!
//! ```sh
//! cargo run --release --example movie_star_joins
//! ```

use std::sync::Arc;
use std::time::Instant;

use gfcl::datagen::{generate_movies, MovieParams};
use gfcl::workloads::job;
use gfcl::{
    ColumnarGraph, Engine, GfClEngine, GfCvEngine, GfRvEngine, RelEngine, RowGraph, StorageConfig,
};

fn main() {
    let titles = 4_000;
    println!("generating IMDb-like movie graph with {titles} titles ...");
    let raw = generate_movies(MovieParams::scale(titles));
    println!("  {} vertices, {} edges", raw.total_vertices(), raw.total_edges());

    let columnar = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let row = Arc::new(RowGraph::build(&raw).unwrap());
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(GfClEngine::new(columnar.clone())),
        Box::new(GfCvEngine::new(columnar.clone())),
        Box::new(GfRvEngine::new(row)),
        Box::new(RelEngine::new(columnar)),
    ];

    let picks = ["2a", "6a", "14a", "17a", "25a", "31a"];
    println!("\n{:>5} | {:>12} | runtime per engine", "query", "count");
    for name in picks {
        let q = job::query(name).expect("known query");
        print!("{name:>5} | ");
        let mut count = None;
        let mut cells = Vec::new();
        for engine in &engines {
            let t0 = Instant::now();
            let out = engine.execute(&q).unwrap();
            let dt = t0.elapsed();
            match count {
                None => count = Some(out.cardinality()),
                Some(c) => assert_eq!(c, out.cardinality(), "engines disagree on {name}"),
            }
            cells.push(format!("{}={:?}", engine.name(), dt));
        }
        println!("{:>12} | {}", count.unwrap(), cells.join("  "));
    }
    println!("\nAll engines returned identical counts.");
}

//! # gfcl — Columnar Storage and List-based Processing for Graph DBMSs
//!
//! A Rust reproduction of Gupta, Mhedhbi & Salihoglu, *"Columnar Storage
//! and List-based Processing for Graph Database Management Systems"*
//! (PVLDB 14(11), 2021) — the GraphflowDB columnar techniques that later
//! became the foundation of Kùzu.
//!
//! The library is an in-memory property-graph DBMS with four interchangeable
//! engines over two storage layouts:
//!
//! | Engine | Storage | Processor |
//! |--------|---------|-----------|
//! | [`GfClEngine`] | columnar | list-based processor (the paper's system) |
//! | [`GfCvEngine`] | columnar | Volcano tuple-at-a-time |
//! | [`GfRvEngine`] | row-oriented | Volcano tuple-at-a-time |
//! | [`RelEngine`]  | columnar tables | block-based hash joins |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, gt, lit, lt, PatternQuery};
//!
//! // The paper's Figure 1 running example graph.
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // Example 1 of the paper:
//! // MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
//! // WHERE a.age > 22 AND b.estd < 2015 RETURN *
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "ORG")
//!     .edge("e", "WORKAT", "a", "b")
//!     .filter(gt(col("a", "age"), lit(22)))
//!     .filter(lt(col("b", "estd"), lit(2015)))
//!     .returns(&[("a", "name"), ("b", "name")])
//!     .build();
//! let out = engine.execute(&q).unwrap();
//! assert_eq!(out.cardinality(), 2); // alice->UW, bob->UofT
//! ```
//!
//! ## Query planning and EXPLAIN
//!
//! Storage builds collect [`storage::Stats`] (counts, degrees,
//! per-property NDV/min/max) into the catalog; with statistics present the
//! planner picks the join order by cost instead of declaration order, and
//! [`Engine::explain`] shows the decision:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, eq, lit, PatternQuery};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // A 2-hop chain with a selective filter on the far end: the optimizer
//! // starts there and traverses backward.
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .node("c", "PERSON")
//!     .edge("e1", "FOLLOWS", "a", "b")
//!     .edge("e2", "FOLLOWS", "b", "c")
//!     .filter(eq(col("c", "age"), lit(17)))
//!     .returns_count()
//!     .build();
//! let text = engine.explain(&q).unwrap();
//! assert!(text.contains("order: statistics"));
//! assert!(text.contains("SCAN      (c:PERSON)"), "{text}");
//! assert!(text.contains("[ListExtend"), "{text}");
//! assert!(text.contains("est ~"), "{text}");
//! ```
//!
//! ## Aggregation & top-k
//!
//! Grouped aggregates (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`, plus
//! `COUNT(DISTINCT)`), `ORDER BY`, `LIMIT`, and `DISTINCT` run directly on
//! the factorized intermediate result: only the grouping keys are ever
//! flattened, and aggregates over unflat adjacency lists fold by
//! multiplicity without enumerating tuples (see `ARCHITECTURE.md`,
//! "The aggregation pipeline"). Grouped and top-k outputs are canonically
//! ordered, so results are byte-identical across engines and worker counts:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{Agg, ColumnarGraph, Engine, GfClEngine, QueryOutput, RawGraph, SortDir,
//!            StorageConfig};
//! use gfcl::query::PatternQuery;
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // Who follows the most people?
//! // MATCH (a:PERSON)-[e:FOLLOWS]->(b:PERSON)
//! // RETURN a.name, COUNT(*), MAX(e.since), COUNT(DISTINCT b.gender)
//! // ORDER BY COUNT(*) DESC LIMIT 2
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .edge("e", "FOLLOWS", "a", "b")
//!     .group_by(&[("a", "name")])
//!     .returns_agg(vec![Agg::count_star(), Agg::max("e", "since"),
//!                       Agg::count_distinct("b", "gender")])
//!     .order_by(1, SortDir::Desc)
//!     .limit(2)
//!     .build();
//! let QueryOutput::Rows { header, rows } = engine.execute(&q).unwrap() else { panic!() };
//! assert_eq!(header, vec!["a.name", "count(*)", "max(e.since)", "count(distinct b.gender)"]);
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows[0][0], gfcl::Value::String("peter".into())); // 3 followees
//! assert_eq!(rows[0][1], gfcl::Value::Int64(3));
//! ```
//!
//! ## Filter pushdown
//!
//! Filter conjuncts over the scanned node's properties are pushed down
//! into the scan itself: the storage layer evaluates them positionally on
//! the vertex-property columns — skipping whole 1024-value blocks via
//! per-block zone maps (min/max synopses) — and the surviving selection
//! mask makes every later property read over the scan group
//! selection-aware. `EXPLAIN` shows the pushed predicates and the
//! estimated block-skip ratio; `GFCL_NO_PUSHDOWN=1` (or
//! [`plan::PlanOptions::no_pushdown`]) is the escape hatch:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, ge, lit, PatternQuery};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .edge("e", "FOLLOWS", "a", "b")
//!     .filter(ge(col("a", "age"), lit(45)))
//!     .returns_count()
//!     .build();
//! let text = engine.explain(&q).unwrap();
//! assert!(text.contains("pushed: a.age >= 45"), "{text}");
//! assert!(text.contains("est zone-skip ~"), "{text}");
//! // The filter runs inside the scan: no FILTER step remains.
//! assert!(!text.contains("FILTER"), "{text}");
//! ```
//!
//! ## Persistence
//!
//! A built graph persists to a single-file page-addressed format
//! ([`ColumnarGraph::save`]) and reopens behind a buffer pool
//! ([`ColumnarGraph::open`]) whose capacity is set by
//! [`StorageConfig::buffer_pool_pages`] or the `GFCL_BUFFER_MB` environment
//! variable. Reopened value arrays stay on disk and fault 64 KiB pages in on
//! demand — a pool smaller than the graph still answers every query
//! identically, just with eviction traffic:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, ge, lit, PatternQuery};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//!
//! // Persist, then reopen cold through a deliberately tiny 2-page pool.
//! let path = std::env::temp_dir().join(format!("gfcl_doc_{}.gfcl", std::process::id()));
//! graph.save(&path).unwrap();
//! let config = StorageConfig { buffer_pool_pages: 2, ..StorageConfig::default() };
//! let reopened = Arc::new(ColumnarGraph::open(&path, config).unwrap());
//!
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .edge("e", "FOLLOWS", "a", "b")
//!     .filter(ge(col("a", "age"), lit(30)))
//!     .returns(&[("a", "name"), ("b", "name")])
//!     .build();
//! let in_mem = GfClEngine::new(Arc::clone(&graph)).execute(&q).unwrap();
//! let from_disk = GfClEngine::new(Arc::clone(&reopened)).execute(&q).unwrap();
//! assert_eq!(in_mem, from_disk);
//!
//! // The memory accounting distinguishes the tiers: value arrays are
//! // pageable after a reopen, and the pool faulted pages to answer.
//! let m = reopened.memory_breakdown();
//! assert!(m.pageable > 0);
//! assert_eq!(m.resident + m.pageable, m.total());
//! let pool = reopened.buffer_pool().unwrap();
//! assert!(pool.stats().faults > 0);
//! # std::fs::remove_file(&path).unwrap();
//! ```
//!
//! Malformed files — wrong magic, truncation, a corrupted page or metadata
//! checksum — fail [`ColumnarGraph::open`] with a clean
//! [`Error::Storage`](Error), never a panic. `EXPLAIN` on a pushed scan
//! additionally reports `~N pages read`, the optimizer's I/O estimate after
//! zone-map skipping. See `ARCHITECTURE.md`, "On-disk format & buffer pool".
//!
//! ## Writing to a graph
//!
//! A [`GraphStore`] makes a graph mutable behind snapshot-isolated reads:
//! writers buffer inserts/updates/deletes in a WAL-backed delta store, each
//! commit publishes a new epoch, and every query pins one [`GraphSnapshot`]
//! for its whole run — concurrent writers never disturb it. All four
//! engines accept a snapshot (`with_snapshot`) and observe the identical
//! merged view `(baseline ⊎ delta) ∖ tombstones`:
//!
//! ```
//! use gfcl::{Engine, GfClEngine, GraphStore, RawGraph, StorageConfig, Value};
//!
//! // Primary keys address vertices in mutations; `age` is unique here.
//! let mut raw = RawGraph::example();
//! raw.catalog.set_primary_key(0, "age").unwrap();
//! let store = GraphStore::in_memory(&raw, StorageConfig::default()).unwrap();
//! let before = store.snapshot(); // pinned: sees the unmutated graph forever
//!
//! // Single-writer transaction: validate as you go, commit atomically.
//! let mut txn = store.begin_write();
//! let alice = txn.lookup_pk("PERSON", 45).unwrap().expect("alice");
//! let zoe = txn
//!     .insert_vertex("PERSON", &[("name", Value::String("zoe".into())),
//!                                ("age", Value::Int64(30))])
//!     .unwrap();
//! txn.insert_edge("FOLLOWS", alice, zoe, &[("since", Value::Int64(2024))]).unwrap();
//! txn.commit().unwrap();
//!
//! let q = "MATCH (a:PERSON)-[e:FOLLOWS]->(b:PERSON) RETURN count(*)";
//! let old = gfcl::query_on(&GfClEngine::with_snapshot(&before), q).unwrap();
//! let new = gfcl::query_on(&GfClEngine::with_snapshot(&store.snapshot()), q).unwrap();
//! assert_eq!(new.as_count().unwrap(), old.as_count().unwrap() + 1);
//!
//! // Mutations are also reachable as text statements, keyed by primary key
//! // (PERSON's primary key is `age` in the example schema):
//! gfcl::execute_statement(&store, "UPDATE VERTEX PERSON 30 SET (name = 'zo')").unwrap();
//! gfcl::execute_statement(&store, "DELETE EDGE FOLLOWS FROM PERSON 45 TO PERSON 30").unwrap();
//! gfcl::execute_statement(&store, "DELETE VERTEX PERSON 30").unwrap();
//!
//! // Merge folds the delta into a fresh columnar baseline (re-blocked zone
//! // maps, recomputed statistics); results are unchanged.
//! store.merge().unwrap();
//! let merged = gfcl::query_on(&GfClEngine::with_snapshot(&store.snapshot()), q).unwrap();
//! assert_eq!(merged.canonical(), old.canonical());
//! ```
//!
//! On-disk stores ([`GraphStore::create`] / [`GraphStore::open`]) append
//! every commit to a checksummed write-ahead log and replay it on open,
//! truncating torn tails — a `SIGKILL` mid-commit loses at most the
//! in-flight transaction, never committed state. See `ARCHITECTURE.md`,
//! "Mutations, WAL & snapshots".
//!
//! ## Limits & cancellation
//!
//! Every query runs inside its own **fault domain**: a shared
//! [`CancelToken`] checked at morsel boundaries, optional time/memory
//! budgets ([`ExecOptions`] fields or `GFCL_TIME_LIMIT_MS` /
//! `GFCL_MEM_LIMIT_MB`), and I/O error containment — a page that fails
//! its checksum after bounded retries fails *that query* with
//! [`Error::Storage`](Error) while queries on healthy pages keep
//! running. User cancellation and exceeded budgets surface as
//! [`Error::Canceled`](Error) carrying the reason, elapsed time, and the
//! memory high-water mark:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{CancelReason, ColumnarGraph, Engine, Error, GfClEngine, RawGraph,
//!            StorageConfig};
//! use gfcl::query::PatternQuery;
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//! let q = PatternQuery::builder().node("a", "PERSON").returns_count().build();
//!
//! // The cancellation handle is shared with every query the engine runs;
//! // cancel it (e.g. from another thread) and in-flight queries stop at
//! // their next morsel boundary.
//! let handle = engine.cancel_handle().expect("GF-CL supports cancellation");
//! handle.cancel(CancelReason::User);
//! match engine.execute(&q) {
//!     Err(Error::Canceled { reason: CancelReason::User, .. }) => {}
//!     other => panic!("expected a canceled query, got {other:?}"),
//! }
//!
//! // reset() re-arms the engine; the same query then runs normally.
//! handle.reset();
//! assert_eq!(engine.execute(&q).unwrap().as_count(), Some(4));
//! ```
//!
//! See `ARCHITECTURE.md`, "Fault domains & resource governance" for the
//! check points, accounting sites, and the storage retry policy.
//!
//! ## Text queries
//!
//! Queries can also be written as text in a small Cypher-like language and
//! compiled through the [`frontend`]: parse → bind against the graph's
//! catalog → the same [`PatternQuery`] the builder produces, so the
//! optimizer, EXPLAIN, and every engine behave identically on both paths.
//! [`query()`] is the one-call form; [`query_on`] targets any engine:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, GfRvEngine, QueryOutput, RawGraph, RowGraph, StorageConfig};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//!
//! // Example 1 of the paper, as text, on the default list-based engine.
//! let out = gfcl::query(
//!     &graph,
//!     "MATCH (a:PERSON)-[e:WORKAT]->(b:ORG) \
//!      WHERE a.age > 22 AND b.estd < 2015 \
//!      RETURN a.name, b.name",
//! )
//! .unwrap();
//! assert_eq!(out.cardinality(), 2); // alice->UW, bob->UofT
//!
//! // The same text on the row-store Volcano baseline: identical answer.
//! let rowg = Arc::new(RowGraph::build(&raw).unwrap());
//! let rv = gfcl::query_on(
//!     &GfRvEngine::new(rowg),
//!     "MATCH (a:PERSON)-[e:WORKAT]->(b:ORG) \
//!      WHERE a.age > 22 AND b.estd < 2015 \
//!      RETURN a.name, b.name",
//! )
//! .unwrap();
//! assert_eq!(rv.canonical(), out.canonical());
//!
//! // Malformed text fails with a rendered caret diagnostic, not a panic.
//! let err = gfcl::query(&graph, "MATCH (a:PERSN) RETURN a.name").unwrap_err();
//! let msg = err.to_string();
//! assert!(msg.contains("unknown node label `PERSN`"), "{msg}");
//! assert!(msg.contains("did you mean `PERSON`?"), "{msg}");
//! ```
//!
//! The grammar (EBNF and lowering rules) is documented in
//! `crates/frontend/GRAMMAR.md`; `examples/query_repl.rs` is an interactive
//! shell over the same entry points.
//!
//! See `ARCHITECTURE.md` for the paper-section → module map, `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

/// The three baseline engines of the evaluation (Section 8): GF-CV
/// (columnar + Volcano), GF-RV (row store + Volcano) and the relational
/// hash-join stand-in.
pub use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
/// Foundation vocabulary shared by every crate: property values and types,
/// IDs, directions, errors, and exact memory accounting.
pub use gfcl_common::{
    human_bytes, DataType, Direction, EdgeId, Error, LabelId, MemoryUsage, Result, Value, VertexId,
};
/// The query front-end and the paper's engine: [`PatternQuery`] +
/// [`Engine`] (with `execute`/`explain`), the list-based [`GfClEngine`],
/// plans, grouped aggregation ([`Agg`], `group_by`/`order_by`/`limit`), and
/// execution options for morsel-driven parallelism.
pub use gfcl_core::{
    Agg, AggFunc, CancelReason, CancelToken, Engine, ExecOptions, GfClEngine, LogicalPlan,
    OrderSource, PatternQuery, QueryBudget, QueryOutput, SortDir,
};
/// The storage layer: catalogs (with build-time [`storage::Stats`]), the
/// [`RawGraph`] interchange format, and the columnar / row graph builds.
pub use gfcl_storage::{
    Cardinality, Catalog, ColumnarGraph, EdgePropLayout, MemoryBreakdown, PropertyDef, RawGraph,
    RowGraph, StorageConfig,
};
/// The mutable store: WAL-backed delta writes behind epoch-pinned MVCC
/// snapshots, plus the merged read view the engines consume.
pub use gfcl_storage::{DeltaSnapshot, GraphSnapshot, GraphStore, GraphView, WriteTxn};

/// The text query frontend: lexer, parser, binder, and spanned diagnostics.
pub mod frontend {
    pub use gfcl_frontend::*;
}

/// Compile a text query against `graph`'s catalog and run it on the paper's
/// list-based engine ([`GfClEngine`]).
///
/// Frontend failures (lex/parse/bind) surface as [`Error::Plan`](Error)
/// carrying the fully rendered diagnostic — locus, caret snippet, and any
/// "did you mean" hint.
pub fn query(graph: &std::sync::Arc<ColumnarGraph>, text: &str) -> Result<QueryOutput> {
    query_on(&GfClEngine::new(std::sync::Arc::clone(graph)), text)
}

/// Compile a text query against `engine`'s catalog and run it on that
/// engine. Works with any [`Engine`] — the four built-ins or an external
/// implementation.
pub fn query_on(engine: &(impl Engine + ?Sized), text: &str) -> Result<QueryOutput> {
    let q = gfcl_frontend::compile(text, engine.catalog())?;
    engine.execute(&q)
}

/// The result of [`execute_statement`]: query output, or the commit receipt
/// of a mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutput {
    Query(QueryOutput),
    /// A committed mutation: the published epoch and how many ops it wrote.
    Mutation {
        epoch: u64,
        ops: usize,
    },
}

impl StatementOutput {
    /// The query output, if this was a read statement.
    pub fn as_query(&self) -> Option<&QueryOutput> {
        match self {
            StatementOutput::Query(q) => Some(q),
            StatementOutput::Mutation { .. } => None,
        }
    }
}

/// Execute one text statement against a mutable [`GraphStore`]: `MATCH`
/// queries run on the paper's list-based engine over a freshly pinned
/// snapshot; `INSERT` / `UPDATE` / `DELETE` statements run in their own
/// write transaction and commit atomically (see the grammar in
/// `crates/frontend/GRAMMAR.md`). Vertices are addressed by primary key.
pub fn execute_statement(store: &GraphStore, text: &str) -> Result<StatementOutput> {
    match gfcl_frontend::parse_statement(text)? {
        frontend::ast::Statement::Query(ast) => {
            let snapshot = store.snapshot();
            let q = gfcl_frontend::bind(&ast, text, snapshot.catalog())?;
            let out = GfClEngine::with_snapshot(&snapshot).execute(&q)?;
            Ok(StatementOutput::Query(out))
        }
        frontend::ast::Statement::Mutation(m) => {
            let mut txn = store.begin_write();
            apply_mutation(&mut txn, &m)?;
            let ops = txn.op_count();
            let epoch = txn.commit()?;
            Ok(StatementOutput::Mutation { epoch, ops })
        }
    }
}

/// Apply one parsed mutation statement to an open [`WriteTxn`], resolving
/// primary keys to offsets through the transaction's own uncommitted view.
/// Exposed so multi-statement batches can share a single atomic commit.
pub fn apply_mutation(txn: &mut WriteTxn<'_>, m: &frontend::ast::MutationStmt) -> Result<()> {
    use frontend::ast::{Lit, LitKind, MutationStmt, PropAssign, VertexRef};

    fn value(l: &Lit) -> Value {
        match &l.kind {
            LitKind::Int(v) => Value::Int64(*v),
            LitKind::Float(v) => Value::Float64(*v),
            LitKind::Str(s) => Value::String(s.clone()),
            LitKind::Bool(b) => Value::Bool(*b),
            LitKind::Date(v) => Value::Date(*v),
        }
    }
    fn props(assigns: &[PropAssign]) -> Vec<(&str, Value)> {
        assigns.iter().map(|a| (a.prop.text.as_str(), value(&a.value))).collect()
    }
    fn resolve(txn: &WriteTxn<'_>, r: &VertexRef) -> Result<u64> {
        txn.lookup_pk(&r.label.text, r.key)?.ok_or_else(|| {
            Error::Plan(format!("no `{}` vertex with primary key {}", r.label.text, r.key))
        })
    }

    match m {
        MutationStmt::InsertVertex { label, props: p } => {
            txn.insert_vertex(&label.text, &props(p))?;
        }
        MutationStmt::InsertEdge { label, src, dst, props: p } => {
            let (s, d) = (resolve(txn, src)?, resolve(txn, dst)?);
            txn.insert_edge(&label.text, s, d, &props(p))?;
        }
        MutationStmt::UpdateVertex { target, sets } => {
            let off = resolve(txn, target)?;
            txn.update_vertex(&target.label.text, off, &props(sets))?;
        }
        MutationStmt::DeleteVertex { target } => {
            let off = resolve(txn, target)?;
            txn.delete_vertex(&target.label.text, off)?;
        }
        MutationStmt::DeleteEdge { label, src, dst } => {
            let (s, d) = (resolve(txn, src)?, resolve(txn, dst)?);
            txn.delete_edge(&label.text, s, d)?;
        }
    }
    Ok(())
}

/// Columnar primitives: leading-0 suppression, dictionary encoding,
/// Jacobson-indexed NULL compression.
pub mod columnar {
    pub use gfcl_columnar::*;
}

/// The query model: pattern builders and expression helpers.
pub mod query {
    pub use gfcl_core::query::*;
}

/// The logical planner.
pub mod plan {
    pub use gfcl_core::plan::*;
}

/// The statistics-driven join orderer and the EXPLAIN renderer.
pub mod optimize {
    pub use gfcl_core::optimize::*;
}

/// Synthetic dataset generators (LDBC-like, IMDb-like, power-law).
pub mod datagen {
    pub use gfcl_datagen::*;
}

/// Benchmark workloads (LDBC IS/IC, JOB, k-hop microbenchmarks).
pub mod workloads {
    pub use gfcl_workloads::*;
}

/// Storage internals (CSRs, property pages, vertex columns, row store).
pub mod storage {
    pub use gfcl_storage::*;
}

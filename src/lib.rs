//! # gfcl — Columnar Storage and List-based Processing for Graph DBMSs
//!
//! A Rust reproduction of Gupta, Mhedhbi & Salihoglu, *"Columnar Storage
//! and List-based Processing for Graph Database Management Systems"*
//! (PVLDB 14(11), 2021) — the GraphflowDB columnar techniques that later
//! became the foundation of Kùzu.
//!
//! The library is an in-memory property-graph DBMS with four interchangeable
//! engines over two storage layouts:
//!
//! | Engine | Storage | Processor |
//! |--------|---------|-----------|
//! | [`GfClEngine`] | columnar | list-based processor (the paper's system) |
//! | [`GfCvEngine`] | columnar | Volcano tuple-at-a-time |
//! | [`GfRvEngine`] | row-oriented | Volcano tuple-at-a-time |
//! | [`RelEngine`]  | columnar tables | block-based hash joins |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, gt, lit, lt, PatternQuery};
//!
//! // The paper's Figure 1 running example graph.
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // Example 1 of the paper:
//! // MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
//! // WHERE a.age > 22 AND b.estd < 2015 RETURN *
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "ORG")
//!     .edge("e", "WORKAT", "a", "b")
//!     .filter(gt(col("a", "age"), lit(22)))
//!     .filter(lt(col("b", "estd"), lit(2015)))
//!     .returns(&[("a", "name"), ("b", "name")])
//!     .build();
//! let out = engine.execute(&q).unwrap();
//! assert_eq!(out.cardinality(), 2); // alice->UW, bob->UofT
//! ```
//!
//! ## Query planning and EXPLAIN
//!
//! Storage builds collect [`storage::Stats`] (counts, degrees,
//! per-property NDV/min/max) into the catalog; with statistics present the
//! planner picks the join order by cost instead of declaration order, and
//! [`Engine::explain`] shows the decision:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, eq, lit, PatternQuery};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // A 2-hop chain with a selective filter on the far end: the optimizer
//! // starts there and traverses backward.
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .node("c", "PERSON")
//!     .edge("e1", "FOLLOWS", "a", "b")
//!     .edge("e2", "FOLLOWS", "b", "c")
//!     .filter(eq(col("c", "age"), lit(17)))
//!     .returns_count()
//!     .build();
//! let text = engine.explain(&q).unwrap();
//! assert!(text.contains("order: statistics"));
//! assert!(text.contains("SCAN      (c:PERSON)"), "{text}");
//! assert!(text.contains("[ListExtend"), "{text}");
//! assert!(text.contains("est ~"), "{text}");
//! ```
//!
//! ## Aggregation & top-k
//!
//! Grouped aggregates (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`, plus
//! `COUNT(DISTINCT)`), `ORDER BY`, `LIMIT`, and `DISTINCT` run directly on
//! the factorized intermediate result: only the grouping keys are ever
//! flattened, and aggregates over unflat adjacency lists fold by
//! multiplicity without enumerating tuples (see `ARCHITECTURE.md`,
//! "The aggregation pipeline"). Grouped and top-k outputs are canonically
//! ordered, so results are byte-identical across engines and worker counts:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{Agg, ColumnarGraph, Engine, GfClEngine, QueryOutput, RawGraph, SortDir,
//!            StorageConfig};
//! use gfcl::query::PatternQuery;
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // Who follows the most people?
//! // MATCH (a:PERSON)-[e:FOLLOWS]->(b:PERSON)
//! // RETURN a.name, COUNT(*), MAX(e.since), COUNT(DISTINCT b.gender)
//! // ORDER BY COUNT(*) DESC LIMIT 2
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .edge("e", "FOLLOWS", "a", "b")
//!     .group_by(&[("a", "name")])
//!     .returns_agg(vec![Agg::count_star(), Agg::max("e", "since"),
//!                       Agg::count_distinct("b", "gender")])
//!     .order_by(1, SortDir::Desc)
//!     .limit(2)
//!     .build();
//! let QueryOutput::Rows { header, rows } = engine.execute(&q).unwrap() else { panic!() };
//! assert_eq!(header, vec!["a.name", "count(*)", "max(e.since)", "count(distinct b.gender)"]);
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows[0][0], gfcl::Value::String("peter".into())); // 3 followees
//! assert_eq!(rows[0][1], gfcl::Value::Int64(3));
//! ```
//!
//! ## Filter pushdown
//!
//! Filter conjuncts over the scanned node's properties are pushed down
//! into the scan itself: the storage layer evaluates them positionally on
//! the vertex-property columns — skipping whole 1024-value blocks via
//! per-block zone maps (min/max synopses) — and the surviving selection
//! mask makes every later property read over the scan group
//! selection-aware. `EXPLAIN` shows the pushed predicates and the
//! estimated block-skip ratio; `GFCL_NO_PUSHDOWN=1` (or
//! [`plan::PlanOptions::no_pushdown`]) is the escape hatch:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, ge, lit, PatternQuery};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .edge("e", "FOLLOWS", "a", "b")
//!     .filter(ge(col("a", "age"), lit(45)))
//!     .returns_count()
//!     .build();
//! let text = engine.explain(&q).unwrap();
//! assert!(text.contains("pushed: a.age >= 45"), "{text}");
//! assert!(text.contains("est zone-skip ~"), "{text}");
//! // The filter runs inside the scan: no FILTER step remains.
//! assert!(!text.contains("FILTER"), "{text}");
//! ```
//!
//! ## Persistence
//!
//! A built graph persists to a single-file page-addressed format
//! ([`ColumnarGraph::save`]) and reopens behind a buffer pool
//! ([`ColumnarGraph::open`]) whose capacity is set by
//! [`StorageConfig::buffer_pool_pages`] or the `GFCL_BUFFER_MB` environment
//! variable. Reopened value arrays stay on disk and fault 64 KiB pages in on
//! demand — a pool smaller than the graph still answers every query
//! identically, just with eviction traffic:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, ge, lit, PatternQuery};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//!
//! // Persist, then reopen cold through a deliberately tiny 2-page pool.
//! let path = std::env::temp_dir().join(format!("gfcl_doc_{}.gfcl", std::process::id()));
//! graph.save(&path).unwrap();
//! let config = StorageConfig { buffer_pool_pages: 2, ..StorageConfig::default() };
//! let reopened = Arc::new(ColumnarGraph::open(&path, config).unwrap());
//!
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "PERSON")
//!     .edge("e", "FOLLOWS", "a", "b")
//!     .filter(ge(col("a", "age"), lit(30)))
//!     .returns(&[("a", "name"), ("b", "name")])
//!     .build();
//! let in_mem = GfClEngine::new(Arc::clone(&graph)).execute(&q).unwrap();
//! let from_disk = GfClEngine::new(Arc::clone(&reopened)).execute(&q).unwrap();
//! assert_eq!(in_mem, from_disk);
//!
//! // The memory accounting distinguishes the tiers: value arrays are
//! // pageable after a reopen, and the pool faulted pages to answer.
//! let m = reopened.memory_breakdown();
//! assert!(m.pageable > 0);
//! assert_eq!(m.resident + m.pageable, m.total());
//! let pool = reopened.buffer_pool().unwrap();
//! assert!(pool.stats().faults > 0);
//! # std::fs::remove_file(&path).unwrap();
//! ```
//!
//! Malformed files — wrong magic, truncation, a corrupted page or metadata
//! checksum — fail [`ColumnarGraph::open`] with a clean
//! [`Error::Storage`](Error), never a panic. `EXPLAIN` on a pushed scan
//! additionally reports `~N pages read`, the optimizer's I/O estimate after
//! zone-map skipping. See `ARCHITECTURE.md`, "On-disk format & buffer pool".
//!
//! ## Text queries
//!
//! Queries can also be written as text in a small Cypher-like language and
//! compiled through the [`frontend`]: parse → bind against the graph's
//! catalog → the same [`PatternQuery`] the builder produces, so the
//! optimizer, EXPLAIN, and every engine behave identically on both paths.
//! [`query()`] is the one-call form; [`query_on`] targets any engine:
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, GfRvEngine, QueryOutput, RawGraph, RowGraph, StorageConfig};
//!
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//!
//! // Example 1 of the paper, as text, on the default list-based engine.
//! let out = gfcl::query(
//!     &graph,
//!     "MATCH (a:PERSON)-[e:WORKAT]->(b:ORG) \
//!      WHERE a.age > 22 AND b.estd < 2015 \
//!      RETURN a.name, b.name",
//! )
//! .unwrap();
//! assert_eq!(out.cardinality(), 2); // alice->UW, bob->UofT
//!
//! // The same text on the row-store Volcano baseline: identical answer.
//! let rowg = Arc::new(RowGraph::build(&raw).unwrap());
//! let rv = gfcl::query_on(
//!     &GfRvEngine::new(rowg),
//!     "MATCH (a:PERSON)-[e:WORKAT]->(b:ORG) \
//!      WHERE a.age > 22 AND b.estd < 2015 \
//!      RETURN a.name, b.name",
//! )
//! .unwrap();
//! assert_eq!(rv.canonical(), out.canonical());
//!
//! // Malformed text fails with a rendered caret diagnostic, not a panic.
//! let err = gfcl::query(&graph, "MATCH (a:PERSN) RETURN a.name").unwrap_err();
//! let msg = err.to_string();
//! assert!(msg.contains("unknown node label `PERSN`"), "{msg}");
//! assert!(msg.contains("did you mean `PERSON`?"), "{msg}");
//! ```
//!
//! The grammar (EBNF and lowering rules) is documented in
//! `crates/frontend/GRAMMAR.md`; `examples/query_repl.rs` is an interactive
//! shell over the same entry points.
//!
//! See `ARCHITECTURE.md` for the paper-section → module map, `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

/// The three baseline engines of the evaluation (Section 8): GF-CV
/// (columnar + Volcano), GF-RV (row store + Volcano) and the relational
/// hash-join stand-in.
pub use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
/// Foundation vocabulary shared by every crate: property values and types,
/// IDs, directions, errors, and exact memory accounting.
pub use gfcl_common::{
    human_bytes, DataType, Direction, EdgeId, Error, LabelId, MemoryUsage, Result, Value, VertexId,
};
/// The query front-end and the paper's engine: [`PatternQuery`] +
/// [`Engine`] (with `execute`/`explain`), the list-based [`GfClEngine`],
/// plans, grouped aggregation ([`Agg`], `group_by`/`order_by`/`limit`), and
/// execution options for morsel-driven parallelism.
pub use gfcl_core::{
    Agg, AggFunc, Engine, ExecOptions, GfClEngine, LogicalPlan, OrderSource, PatternQuery,
    QueryOutput, SortDir,
};
/// The storage layer: catalogs (with build-time [`storage::Stats`]), the
/// [`RawGraph`] interchange format, and the columnar / row graph builds.
pub use gfcl_storage::{
    Cardinality, Catalog, ColumnarGraph, EdgePropLayout, MemoryBreakdown, PropertyDef, RawGraph,
    RowGraph, StorageConfig,
};

/// The text query frontend: lexer, parser, binder, and spanned diagnostics.
pub mod frontend {
    pub use gfcl_frontend::*;
}

/// Compile a text query against `graph`'s catalog and run it on the paper's
/// list-based engine ([`GfClEngine`]).
///
/// Frontend failures (lex/parse/bind) surface as [`Error::Plan`](Error)
/// carrying the fully rendered diagnostic — locus, caret snippet, and any
/// "did you mean" hint.
pub fn query(graph: &std::sync::Arc<ColumnarGraph>, text: &str) -> Result<QueryOutput> {
    query_on(&GfClEngine::new(std::sync::Arc::clone(graph)), text)
}

/// Compile a text query against `engine`'s catalog and run it on that
/// engine. Works with any [`Engine`] — the four built-ins or an external
/// implementation.
pub fn query_on(engine: &(impl Engine + ?Sized), text: &str) -> Result<QueryOutput> {
    let q = gfcl_frontend::compile(text, engine.catalog())?;
    engine.execute(&q)
}

/// Columnar primitives: leading-0 suppression, dictionary encoding,
/// Jacobson-indexed NULL compression.
pub mod columnar {
    pub use gfcl_columnar::*;
}

/// The query model: pattern builders and expression helpers.
pub mod query {
    pub use gfcl_core::query::*;
}

/// The logical planner.
pub mod plan {
    pub use gfcl_core::plan::*;
}

/// The statistics-driven join orderer and the EXPLAIN renderer.
pub mod optimize {
    pub use gfcl_core::optimize::*;
}

/// Synthetic dataset generators (LDBC-like, IMDb-like, power-law).
pub mod datagen {
    pub use gfcl_datagen::*;
}

/// Benchmark workloads (LDBC IS/IC, JOB, k-hop microbenchmarks).
pub mod workloads {
    pub use gfcl_workloads::*;
}

/// Storage internals (CSRs, property pages, vertex columns, row store).
pub mod storage {
    pub use gfcl_storage::*;
}

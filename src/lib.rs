//! # gfcl — Columnar Storage and List-based Processing for Graph DBMSs
//!
//! A Rust reproduction of Gupta, Mhedhbi & Salihoglu, *"Columnar Storage
//! and List-based Processing for Graph Database Management Systems"*
//! (PVLDB 14(11), 2021) — the GraphflowDB columnar techniques that later
//! became the foundation of Kùzu.
//!
//! The library is an in-memory property-graph DBMS with four interchangeable
//! engines over two storage layouts:
//!
//! | Engine | Storage | Processor |
//! |--------|---------|-----------|
//! | [`GfClEngine`] | columnar | list-based processor (the paper's system) |
//! | [`GfCvEngine`] | columnar | Volcano tuple-at-a-time |
//! | [`GfRvEngine`] | row-oriented | Volcano tuple-at-a-time |
//! | [`RelEngine`]  | columnar tables | block-based hash joins |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gfcl::{ColumnarGraph, Engine, GfClEngine, RawGraph, StorageConfig};
//! use gfcl::query::{col, gt, lit, lt, PatternQuery};
//!
//! // The paper's Figure 1 running example graph.
//! let raw = RawGraph::example();
//! let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
//! let engine = GfClEngine::new(graph);
//!
//! // Example 1 of the paper:
//! // MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
//! // WHERE a.age > 22 AND b.estd < 2015 RETURN *
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "ORG")
//!     .edge("e", "WORKAT", "a", "b")
//!     .filter(gt(col("a", "age"), lit(22)))
//!     .filter(lt(col("b", "estd"), lit(2015)))
//!     .returns(&[("a", "name"), ("b", "name")])
//!     .build();
//! let out = engine.execute(&q).unwrap();
//! assert_eq!(out.cardinality(), 2); // alice->UW, bob->UofT
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
pub use gfcl_common::{
    human_bytes, DataType, Direction, EdgeId, Error, LabelId, MemoryUsage, Result, Value, VertexId,
};
pub use gfcl_core::{Engine, ExecOptions, GfClEngine, LogicalPlan, PatternQuery, QueryOutput};
pub use gfcl_storage::{
    Cardinality, Catalog, ColumnarGraph, EdgePropLayout, MemoryBreakdown, PropertyDef, RawGraph,
    RowGraph, StorageConfig,
};

/// Columnar primitives: leading-0 suppression, dictionary encoding,
/// Jacobson-indexed NULL compression.
pub mod columnar {
    pub use gfcl_columnar::*;
}

/// The query model: pattern builders and expression helpers.
pub mod query {
    pub use gfcl_core::query::*;
}

/// The logical planner.
pub mod plan {
    pub use gfcl_core::plan::*;
}

/// Synthetic dataset generators (LDBC-like, IMDb-like, power-law).
pub mod datagen {
    pub use gfcl_datagen::*;
}

/// Benchmark workloads (LDBC IS/IC, JOB, k-hop microbenchmarks).
pub mod workloads {
    pub use gfcl_workloads::*;
}

/// Storage internals (CSRs, property pages, vertex columns, row store).
pub mod storage {
    pub use gfcl_storage::*;
}

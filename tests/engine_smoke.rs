//! Workspace smoke test: all four engines construct from the Figure-1
//! example graph and agree — cardinality and canonical result set — on the
//! paper's Example 1 query. This is the cheapest possible "is the whole
//! stack wired together" check; the deeper equivalence suites live in
//! `crates/baselines/tests/`.

use std::sync::Arc;

use gfcl::query::{col, gt, lit, lt, PatternQuery};
use gfcl::{
    ColumnarGraph, Engine, GfClEngine, GfCvEngine, GfRvEngine, RawGraph, RelEngine, RowGraph,
    StorageConfig,
};

fn example_1() -> PatternQuery {
    // MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
    // WHERE a.age > 22 AND b.estd < 2015 RETURN a.name, b.name
    PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "ORG")
        .edge("e", "WORKAT", "a", "b")
        .filter(gt(col("a", "age"), lit(22)))
        .filter(lt(col("b", "estd"), lit(2015)))
        .returns(&[("a", "name"), ("b", "name")])
        .build()
}

#[test]
fn all_four_engines_construct_and_agree_on_figure_1() {
    let raw = RawGraph::example();
    let colg = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let rowg = Arc::new(RowGraph::build(&raw).unwrap());

    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(GfClEngine::new(colg.clone())),
        Box::new(GfCvEngine::new(colg.clone())),
        Box::new(GfRvEngine::new(rowg)),
        Box::new(RelEngine::new(colg)),
    ];

    let q = example_1();
    let outputs: Vec<_> =
        engines.iter().map(|e| (e.name().to_owned(), e.execute(&q).unwrap())).collect();

    for (name, out) in &outputs {
        assert_eq!(out.cardinality(), 2, "{name}: expected alice->UW and bob->UofT");
    }
    let reference = outputs[0].1.canonical();
    for (name, out) in &outputs[1..] {
        assert_eq!(
            out.canonical(),
            reference,
            "{name} disagrees with {} on Example 1",
            outputs[0].0
        );
    }
}

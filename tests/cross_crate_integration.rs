//! Workspace-level integration tests: the full stack (datagen -> storage ->
//! planner -> all four engines) on the benchmark workloads, plus randomized
//! cross-engine equivalence (DESIGN.md invariant 6 at scale).

use std::sync::Arc;

use gfcl::datagen::{generate_movies, generate_social, MovieParams, SocialParams};
use gfcl::query::{col, eq, gt, lit, PatternQuery};
use gfcl::workloads::ldbc::{self, LdbcParams};
use gfcl::workloads::{job, khop, khop_propless, KhopMode};
use gfcl::{
    ColumnarGraph, Engine, GfClEngine, GfCvEngine, GfRvEngine, RawGraph, RelEngine, RowGraph,
    StorageConfig,
};

fn engines(raw: &RawGraph, cfg: StorageConfig) -> Vec<Box<dyn Engine>> {
    let col_graph = Arc::new(ColumnarGraph::build(raw, cfg).unwrap());
    let row_graph = Arc::new(RowGraph::build(raw).unwrap());
    vec![
        Box::new(GfClEngine::new(col_graph.clone())),
        Box::new(GfCvEngine::new(col_graph.clone())),
        Box::new(GfRvEngine::new(row_graph)),
        Box::new(RelEngine::new(col_graph)),
    ]
}

fn assert_agree(engines: &[Box<dyn Engine>], name: &str, q: &PatternQuery) -> String {
    let outputs: Vec<(String, String)> = engines
        .iter()
        .map(|e| {
            let out =
                e.execute(q).unwrap_or_else(|err| panic!("{name} failed on {}: {err}", e.name()));
            (e.name().to_owned(), out.canonical())
        })
        .collect();
    for (ename, o) in &outputs[1..] {
        assert_eq!(o, &outputs[0].1, "{name}: {ename} vs {}", outputs[0].0);
    }
    outputs[0].1.clone()
}

#[test]
fn full_ldbc_suite_agrees_across_engines() {
    let persons = 300;
    let raw = generate_social(SocialParams::scale(persons));
    let engines = engines(&raw, StorageConfig::default());
    let params = LdbcParams::for_scale(persons);
    let mut non_empty = 0;
    for (name, q) in ldbc::all_queries(&params) {
        let canon = assert_agree(&engines, &name, &q);
        if !canon.ends_with(":") && !canon.ends_with("[]") {
            non_empty += 1;
        }
    }
    assert!(non_empty >= 10, "most LDBC queries should return data ({non_empty})");
}

#[test]
fn full_job_suite_agrees_across_engines() {
    let raw = generate_movies(MovieParams::scale(250));
    let engines = engines(&raw, StorageConfig::default());
    let mut non_zero = 0;
    for (name, q) in job::all_queries() {
        let outputs: Vec<u64> =
            engines.iter().map(|e| e.execute(&q).unwrap().cardinality()).collect();
        assert!(outputs.iter().all(|&c| c == outputs[0]), "{name}: {outputs:?}");
        if outputs[0] > 0 {
            non_zero += 1;
        }
    }
    // Many JOB-like predicates are highly selective at small scale, but a
    // healthy share must match something for the benchmark to be meaningful.
    assert!(non_zero >= 10, "only {non_zero}/33 JOB queries returned matches");
}

#[test]
fn khop_workloads_agree_across_engines_and_storage_ladder() {
    let raw = generate_social(SocialParams::scale(150));
    for (step, cfg) in StorageConfig::ladder() {
        let engines = engines(&raw, cfg);
        for hops in 1..=2usize {
            for (mode_name, mode) in [
                ("count", KhopMode::CountStar),
                ("filter", KhopMode::LastEdgeGt(1_380_000_000)),
                ("chain", KhopMode::Chain(1_380_000_000)),
            ] {
                let q = khop("Person", "knows", "date", hops, mode, false);
                assert_agree(&engines, &format!("{step}/{mode_name}/{hops}H"), &q);
            }
        }
        let q = khop_propless("Comment", "replyOfComment", 3);
        assert_agree(&engines, &format!("{step}/replyOf 3H"), &q);
    }
}

#[test]
fn forward_and_backward_plans_agree_on_all_engines() {
    let raw = generate_social(SocialParams::scale(120));
    let engines = engines(&raw, StorageConfig::default());
    let fwd = khop("Person", "knows", "date", 2, KhopMode::Chain(1_400_000_000), false);
    let bwd = khop("Person", "knows", "date", 2, KhopMode::Chain(1_400_000_000), true);
    let a = assert_agree(&engines, "fwd", &fwd);
    let b = assert_agree(&engines, "bwd", &bwd);
    assert_eq!(a, b, "plan direction must not change results");
}

#[test]
fn facade_quickstart_flow() {
    // The README quickstart, end to end.
    let raw = RawGraph::example();
    let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph);
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "ORG")
        .edge("e", "WORKAT", "a", "b")
        .filter(gt(col("a", "age"), lit(22)))
        .returns(&[("a", "name"), ("b", "name")])
        .build();
    assert_eq!(engine.execute(&q).unwrap().cardinality(), 2);
}

#[test]
fn seek_queries_match_scan_queries() {
    // ScanPk (GF engines) and scan+filter (REL) must agree.
    let raw = generate_social(SocialParams::scale(200));
    let engines = engines(&raw, StorageConfig::default());
    for pid in [0i64, 57, 199] {
        let q = PatternQuery::builder()
            .node("p", "Person")
            .node("f", "Person")
            .node("c", "Comment")
            .edge("k", "knows", "p", "f")
            .edge("hc", "hasCreator", "c", "f")
            .filter(eq(col("p", "id"), lit(pid)))
            .returns_count()
            .build();
        assert_agree(&engines, &format!("seek p{pid}"), &q);
    }
}

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access, so this workspace vendors the
//! slice of `rand` it actually uses: [`rngs::SmallRng`], [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`]. The
//! generator is SplitMix64 — deterministic for a given seed, statistically
//! fine for synthetic datagen, and *not* cryptographic (neither is the real
//! `SmallRng`).

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform over the full domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range. Panics on an
    /// empty range, matching the real `rand`. Generic over the output type
    /// (as in the real crate) so the call site's expected type drives
    /// integer-literal inference.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. `p` outside `[0, 1]` is clamped.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush on its output function.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

/// Full-domain uniform sampling (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `gen_range` accepts, producing a `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by widening multiply; bias is < 2^-64 per draw,
/// irrelevant for synthetic data.
#[inline]
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64/i64 domain
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! subset of proptest its property tests use — the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range / tuple / `Just` / `any` /
//! string-pattern strategies, `collection::vec`, `option::{of, weighted}`,
//! the [`proptest!`] macro, and a deterministic case runner — plus a few
//! adjacent conveniences (`prop_filter`, `prop_oneof!`, `boxed()`,
//! `prop_assert_ne!`) so future tests written against the real proptest
//! idiom compile unchanged.
//!
//! Deliberate simplifications versus the real crate:
//! - **No shrinking.** A failing case panics with the generated inputs
//!   (captured by `prop_assert_*`'s message) and the case number.
//! - **Deterministic seeding.** Case `i` of every test derives its RNG from
//!   a fixed base seed and `i`, so failures reproduce without a persistence
//!   file. Set `PROPTEST_BASE_SEED` to explore different input sets.
//! - String strategies support the pattern subset `[class]{lo,hi}` plus
//!   literals and `? * + {n}` quantifiers, which covers this workspace.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` — only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; property tests in this workspace are
            // O(n^2)-ish per case, so keep CI snappy while still sampling
            // broadly. Override per-test with `with_cases`.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case RNG: a thin wrapper over the vendored
    /// `rand::rngs::SmallRng` (the real proptest also drives its value
    /// trees from a `rand` RNG).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::SmallRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng { inner: rand::rngs::SmallRng::seed_from_u64(seed) }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Uniform sample from any range `rand` can sample. All range-based
        /// strategies delegate here so the sampling logic (span widening,
        /// bias handling) lives in one place: the vendored `rand` crate.
        #[inline]
        pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            use rand::Rng;
            self.inner.gen_range(range)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            self.gen_range(0..n)
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            use rand::Rng;
            self.inner.gen::<f64>()
        }
    }

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_BASE_SEED") {
            Ok(s) => {
                let t = s.trim();
                let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => t.parse(),
                };
                // Loud failure: silently substituting the default would make
                // a pasted reproduction seed run a different input set.
                parsed.unwrap_or_else(|e| {
                    panic!("PROPTEST_BASE_SEED={s:?} is not a decimal or 0x-hex u64: {e}")
                })
            }
            Err(_) => 0xC0FF_EE00_D15E_A5E5,
        }
    }

    /// Run `body` once per case with a per-case deterministic RNG.
    pub fn run<F: FnMut(&mut TestRng)>(config: &ProptestConfig, mut body: F) {
        let base = base_seed();
        for case in 0..config.cases as u64 {
            // SplitMix the (base, case) pair into a well-spread seed.
            let mut rng =
                TestRng::from_seed(base.wrapping_add(case.wrapping_mul(0xA076_1D64_78BD_642F)));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest: failing case {case} of {} (base seed {base:#x})",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Value-generation strategy. Unlike the real proptest there is no value
    /// tree / shrinking; `sample` draws a fresh value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, whence }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    /// References to strategies are strategies, mirroring the real crate's
    /// `impl Strategy for &S`.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: self.inner.clone() }
        }
    }

    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 consecutive samples", self.whence);
        }
    }

    // Range strategies delegate to the vendored rand crate's samplers so the
    // subtle span/bias logic exists in exactly one place.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// `&str` strategies interpret a regex-like pattern; see [`crate::string`].
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    /// Marker for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    pub fn any_strategy<T: crate::arbitrary::Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Full-domain value generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards small magnitudes and boundary values the
                    // way proptest's integer strategies do, so edge cases
                    // (0, MAX, small counts) actually get exercised.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 | 4 => (rng.below(256) as i64 - 128) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(4) {
                0 => 0.0,
                1 => (rng.below(2000) as f64 - 1000.0) / 10.0,
                _ => loop {
                    // Rejection-sample the full bit space for finite floats
                    // (non-finite patterns are ~0.05% of draws).
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_finite() {
                        break v;
                    }
                },
            }
        }
    }

    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::any_strategy::<T>()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Anything that can describe a vec length: a fixed size or a range.
    pub trait IntoSizeRange {
        /// (lo, hi) half-open.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
        some_probability: f64,
    }

    /// `Some` with probability 0.5 (the real crate's default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_probability: 0.5 }
    }

    /// `Some` with the given probability.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_probability }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.some_probability {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// Sample a string from a regex-like pattern. Supported syntax: literal
    /// chars, `[a-z0-9_]` classes (ranges and singletons), and the
    /// quantifiers `{n}`, `{lo,hi}`, `?`, `*`, `+` (the unbounded ones cap
    /// at 8 repetitions). This covers the patterns used in this workspace;
    /// anything fancier panics loudly rather than silently misbehaving.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // 1. Parse one atom into its alphabet.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    assert!(
                        chars.get(i + 1) != Some(&'^'),
                        "negated classes [^...] are unsupported in {pattern:?}"
                    );
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                        + i;
                    let mut alpha = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            for c in lo..=hi {
                                alpha.push(c);
                            }
                            j += 3;
                        } else {
                            alpha.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!alpha.is_empty(), "empty class in {pattern:?}");
                    i = close + 1;
                    alpha
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                    i += 2;
                    vec![c]
                }
                c if "(){}*+?|.".contains(c) => {
                    panic!("unsupported pattern syntax {c:?} in {pattern:?}")
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };

            // 2. Parse an optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        let (lo, hi) = match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().expect("bad quantifier"),
                                b.trim().parse::<usize>().expect("bad quantifier"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        };
                        assert!(lo <= hi, "bad quantifier {{{body}}} in {pattern:?}: lo > hi");
                        (lo, hi)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };

            // 3. Emit.
            let span = (hi - lo + 1) as u64;
            let reps = lo + rng.below(span) as usize;
            for _ in 0..reps {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_assert!` — in this stub, assertions panic (no shrinking pass to
/// feed an `Err` back into), which the runner reports with the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::__oneof_impl(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[doc(hidden)]
pub fn __oneof_impl<T: 'static>(
    choices: Vec<strategy::BoxedStrategy<T>>,
) -> impl strategy::Strategy<Value = T> {
    use strategy::Strategy;
    (0usize..choices.len()).prop_flat_map(move |i| choices[i].clone())
}

/// The `proptest!` macro: wraps each `fn name(pat in strategy, ...) { .. }`
/// into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 2usize..40, y in -20i64..20) {
            prop_assert!((2..40).contains(&x));
            prop_assert!((-20..20).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u64>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(any::<bool>(), 5usize)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn string_pattern(s in "[a-e]{0,4}") {
            prop_assert!(s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }

        #[test]
        fn flat_map_tuples((n, v) in (1usize..10).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0..n as u64, n))
        })) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| (x as usize) < n));
        }

        #[test]
        fn options_weighted(v in crate::collection::vec(
            crate::option::weighted(1.0, 0i64..5), 4usize)) {
            prop_assert!(v.iter().all(|o| o.is_some()));
        }
    }

    #[test]
    fn config_cases_respected() {
        let mut count = 0;
        crate::test_runner::run(&crate::test_runner::ProptestConfig::with_cases(24), |_rng| {
            count += 1
        });
        assert_eq!(count, 24);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! API surface its benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (`harness = false`
//! targets provide their own `main`) — plus a few adjacent conveniences
//! (`iter_batched`, `bench_with_input`, `BenchmarkId`, `Throughput`) so
//! future benches written against the real criterion idiom compile unchanged.
//!
//! Measurement model: warm up briefly, then run timed batches until
//! `measurement_time` elapses (default 300 ms per benchmark) and report the
//! minimum per-iteration time — the low-noise point estimate. No statistics,
//! plots, or baselines; good enough to compare orders of magnitude and to
//! keep every bench target compiling and runnable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for compatibility; this stub sizes batches by time alone.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.measurement_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    /// Filled in by `iter`: (iterations, elapsed) of the best batch.
    best_ns_per_iter: f64,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until it takes
        // at least ~1 ms, so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut best = f64::INFINITY;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_ns_per_iter = best;
    }

    /// Like [`iter`](Bencher::iter) but with per-input setup outside the
    /// timed region. Uses the same grow-the-batch-until-~1ms calibration so
    /// timer overhead stays amortized even for nanosecond-scale routines.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut batch: usize = 1;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(f(input));
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut best = f64::INFINITY;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(f(input));
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_ns_per_iter = best;
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Append one `{"bench": ..., "ns_per_iter": ...}` JSON line to the file
/// named by `GFCL_BENCH_JSON` (no-op when unset). CI's `bench-smoke` job
/// collects these lines into the `BENCH_PR.json` performance artifact.
pub fn record_json(id: &str, ns_per_iter: f64) {
    let Ok(path) = std::env::var("GFCL_BENCH_JSON") else { return };
    if path.is_empty() || !ns_per_iter.is_finite() {
        return;
    }
    use std::io::Write as _;
    let escaped: String = id
        .chars()
        .map(|c| match c {
            '"' => '\''.to_string(),
            '\\' => '/'.to_string(),
            c => c.to_string(),
        })
        .collect();
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(f, "{{\"bench\": \"{escaped}\", \"ns_per_iter\": {ns_per_iter:.1}}}");
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, measurement_time: Duration, f: &mut F) {
    let mut b = Bencher { best_ns_per_iter: f64::NAN, measurement_time };
    f(&mut b);
    let ns = b.best_ns_per_iter;
    record_json(id, ns);
    let human = if ns.is_nan() {
        "no iter() call".to_owned()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    };
    println!("bench {id:<60} {human}");
}

/// `criterion_group!(name, target, ...)` — plain and `config =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("mul", |b| b.iter(|| black_box(2u64) * black_box(3)));
        g.finish();
    }

    #[test]
    fn smoke() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        bench_addition(&mut c);
    }
}
